//! Trace-driven replay harness: packet-for-packet conformance across the
//! four network configurations.
//!
//! The figure benches compare configurations distribution-wise — each mode
//! sees a *statistically* identical Bernoulli workload, not the same
//! packets. This bin closes that gap:
//!
//! 1. **record** one NP-NB run with injection recording on, stamping the
//!    trace with its provenance (seed, pattern, load, B×D, git sha),
//! 2. **persist** it in both on-disk formats (compact binary `.ertr` +
//!    JSONL interchange), load it back and verify the checksummed
//!    round trip,
//! 3. **conform**: replay the trace against the recording configuration
//!    and assert the original `RunResult` is reproduced byte-identically —
//!    and that the parallel executor replays byte-identically to the
//!    sequential one,
//! 4. **diff**: replay the identical workload across NP-NB, P-NB, NP-B
//!    and P-B with per-packet delivery logging, and report per-packet
//!    latency deltas against the NP-NB baseline plus per-window divergence
//!    keyed to the DPM/DBR activity telemetry recorded in each window.
//!
//! ```text
//! cargo run --release -p erapid-bench --bin replay
//! ERAPID_QUICK=1 cargo run --release -p erapid-bench --bin replay
//! ```
//!
//! Outputs under `ERAPID_RESULTS` (default `results/`):
//! `workload_<sha>.ertr`, `workload_<sha>.trace.jsonl` and
//! `REPLAY_<sha>.json`.

use erapid_bench::{git_sha, BenchConfig};
use erapid_core::config::{NetworkMode, SystemConfig};
use erapid_core::experiment::{
    run_once_recorded, run_once_replayed, RunResult, RunTrace, TraceSource,
};
use erapid_core::metrics::PacketDelivery;
use erapid_core::runner::{run_points_traced, RunPoint};
use erapid_telemetry::TraceConfig;
use netstats::table::Table;
use std::fmt::Write as _;
use std::num::NonZeroUsize;
use std::sync::Arc;
use traffic::pattern::TrafficPattern;
use traffic::trace::InjectionTrace;

/// The workload every mode replays: uniform at mid load, where DPM has
/// headroom to scale down and DBR still sees imbalance worth chasing.
const LOAD: f64 = 0.5;
const PATTERN: TrafficPattern = TrafficPattern::Uniform;
/// Largest per-packet deltas listed in the report.
const TOP_DELTAS: usize = 10;

fn recording_config() -> SystemConfig {
    SystemConfig::paper64(NetworkMode::NpNb)
}

/// A replay point for `mode`: same geometry and seed as the recording,
/// packet logging and telemetry on.
fn replay_point(bench: &BenchConfig, trace: &Arc<InjectionTrace>, mode: NetworkMode) -> RunPoint {
    let mut cfg = SystemConfig::paper64(mode);
    cfg.packet_log = true;
    cfg.trace = TraceConfig::on();
    let plan = bench.plan(cfg.schedule.window);
    RunPoint {
        cfg,
        pattern: PATTERN,
        load: LOAD,
        plan,
        source: TraceSource::Replay(Arc::clone(trace)),
    }
}

/// Per-packet latency of every delivered packet, indexed by packet id.
fn latency_by_id(packets: &[PacketDelivery]) -> Vec<Option<(u64, u64)>> {
    let max_id = packets.iter().map(|p| p.id).max().map_or(0, |m| m + 1);
    let mut out = vec![None; max_id as usize];
    for p in packets {
        out[p.id as usize] = Some((p.injected_at, p.delivered_at - p.injected_at));
    }
    out
}

/// One mode's packet-for-packet comparison against the baseline.
struct ModeDiff {
    mode: NetworkMode,
    result: RunResult,
    matched: u64,
    missing: u64,
    extra: u64,
    mean_delta: f64,
    max_abs_delta: i64,
    p95_abs_delta: i64,
    /// `(id, injected_at, base_latency, mode_latency)` of the largest
    /// absolute deltas, worst first.
    top: Vec<(u64, u64, u64, u64)>,
    /// Per-window rows: `(window, packets, mean_delta, dpm_retunes,
    /// dbr_grants)` keyed by the *injection* window of each packet.
    windows: Vec<(u64, u64, f64, u64, u64)>,
}

fn diff_mode(
    mode: NetworkMode,
    result: RunResult,
    base: &[Option<(u64, u64)>],
    trace: &RunTrace,
    window: u64,
) -> ModeDiff {
    let ours = latency_by_id(&trace.packets);
    let mut matched = 0u64;
    let mut missing = 0u64;
    let mut extra = 0u64;
    let mut deltas: Vec<(i64, u64, u64, u64, u64)> = Vec::new(); // (delta, id, injected, base_lat, our_lat)
    for id in 0..base.len().max(ours.len()) {
        let b = base.get(id).copied().flatten();
        let o = ours.get(id).copied().flatten();
        match (b, o) {
            (Some((inj, bl)), Some((_, ol))) => {
                matched += 1;
                deltas.push((ol as i64 - bl as i64, id as u64, inj, bl, ol));
            }
            (Some(_), None) => missing += 1,
            (None, Some(_)) => extra += 1,
            (None, None) => {}
        }
    }
    let mean_delta = if deltas.is_empty() {
        0.0
    } else {
        deltas.iter().map(|d| d.0 as f64).sum::<f64>() / deltas.len() as f64
    };
    let mut by_abs: Vec<i64> = deltas.iter().map(|d| d.0.abs()).collect();
    by_abs.sort_unstable();
    let max_abs_delta = by_abs.last().copied().unwrap_or(0);
    let p95_abs_delta = if by_abs.is_empty() {
        0
    } else {
        by_abs[(by_abs.len() - 1) * 95 / 100]
    };
    let mut worst = deltas.clone();
    // Deterministic order: by |delta| descending, id ascending as the tie
    // breaker.
    worst.sort_by(|a, b| b.0.abs().cmp(&a.0.abs()).then(a.1.cmp(&b.1)));
    let top = worst
        .iter()
        .take(TOP_DELTAS)
        .map(|&(_, id, inj, bl, ol)| (id, inj, bl, ol))
        .collect();

    // Per-window divergence: bucket matched packets by injection window,
    // then join the mode's DPM/DBR counter deltas for the same window.
    let max_win = deltas.iter().map(|d| d.2 / window).max().unwrap_or(0);
    let mut sums = vec![(0u64, 0i64); max_win as usize + 1];
    for &(delta, _, inj, _, _) in &deltas {
        let w = (inj / window) as usize;
        sums[w].0 += 1;
        sums[w].1 += delta;
    }
    let counter_col = |name: &str| trace.counter_names.iter().position(|n| n == name);
    let retune_col = counter_col("dpm_retunes");
    let grant_col = counter_col("dbr_grants");
    let windows = sums
        .iter()
        .enumerate()
        .filter(|(_, (n, _))| *n > 0)
        .map(|(w, &(n, sum))| {
            // WindowSnapshot indices count boundaries from 1; boundary k
            // closes the window covering cycles [(k-1)·R_w, k·R_w).
            let snap = trace.windows.iter().find(|s| s.window == w as u64 + 1);
            let col = |c: Option<usize>| snap.and_then(|s| c.map(|i| s.counters[i])).unwrap_or(0);
            (
                w as u64,
                n,
                sum as f64 / n as f64,
                col(retune_col),
                col(grant_col),
            )
        })
        .collect();
    ModeDiff {
        mode,
        result,
        matched,
        missing,
        extra,
        mean_delta,
        max_abs_delta,
        p95_abs_delta,
        top,
        windows,
    }
}

fn result_json(r: &RunResult) -> String {
    format!(
        "{{\"load\":{},\"throughput\":{},\"latency\":{},\"latency_p95\":{},\"power_mw\":{},\"undrained\":{},\"grants\":{},\"retunes\":{},\"cycles\":{}}}",
        r.load,
        r.throughput,
        r.latency,
        r.latency_p95,
        r.power_mw,
        r.undrained,
        r.grants,
        r.retunes,
        r.cycles
    )
}

/// Renders the full report (also the byte-string compared between the
/// parallel and sequential replays).
fn report_json(sha: &str, quick: bool, trace: &InjectionTrace, diffs: &[ModeDiff]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"git_sha\": \"{sha}\",\n  \"quick\": {quick},\n  \"workload\": {{\"pattern\": \"{}\", \"load\": {}, \"seed\": {}, \"boards\": {}, \"nodes_per_board\": {}, \"entries\": {}, \"checksum\": \"{:016x}\"}},\n  \"baseline_mode\": \"NP-NB\",\n  \"modes\": [",
        trace.meta.pattern,
        trace.meta.load,
        trace.meta.seed,
        trace.meta.boards,
        trace.meta.nodes_per_board,
        trace.entries.len(),
        trace.checksum(),
    );
    for (i, d) in diffs.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"mode\": \"{}\", \"result\": {}, \"diff\": {{\"matched\": {}, \"missing_vs_baseline\": {}, \"extra_vs_baseline\": {}, \"mean_latency_delta\": {}, \"max_abs_delta\": {}, \"p95_abs_delta\": {}, \"top_deltas\": [",
            d.mode.name(),
            result_json(&d.result),
            d.matched,
            d.missing,
            d.extra,
            d.mean_delta,
            d.max_abs_delta,
            d.p95_abs_delta,
        );
        for (j, &(id, inj, bl, ol)) in d.top.iter().enumerate() {
            let sep = if j == 0 { "" } else { ", " };
            // Packet ids are injection-order, so id k is entry k of the
            // trace: recover the packet's src/dst from its provenance.
            let (src, dst) = trace
                .entries
                .get(id as usize)
                .map_or((0, 0), |e| (e.src, e.dst));
            let _ = write!(
                out,
                "{sep}{{\"id\": {id}, \"src\": {src}, \"dst\": {dst}, \"injected_at\": {inj}, \"baseline_latency\": {bl}, \"latency\": {ol}, \"delta\": {}}}",
                ol as i64 - bl as i64
            );
        }
        out.push_str("], \"windows\": [");
        for (j, &(w, n, mean, retunes, grants)) in d.windows.iter().enumerate() {
            let sep = if j == 0 { "" } else { ", " };
            let _ = write!(
                out,
                "{sep}{{\"window\": {w}, \"packets\": {n}, \"mean_latency_delta\": {mean}, \"dpm_retunes\": {retunes}, \"dbr_grants\": {grants}}}"
            );
        }
        out.push_str("]}}");
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn main() {
    let bench = BenchConfig::from_env();
    let sha = git_sha();
    println!(
        "=== replay: record paper64 NP-NB uniform load {LOAD}, replay across 4 modes on {} threads ===\n",
        bench.threads
    );

    // 1. Record the workload.
    let cfg = recording_config();
    let plan = bench.plan(cfg.schedule.window);
    let (recorded_result, mut trace) = run_once_recorded(cfg, PATTERN, LOAD, plan);
    trace.meta.git_sha = sha.clone();
    println!(
        "recorded {} injections over {} cycles (checksum {:016x})",
        trace.entries.len(),
        recorded_result.cycles,
        trace.checksum()
    );

    // 2. Persist both formats and verify the round trip.
    let dir = bench.results_dir();
    let bin_path = dir.join(format!("workload_{sha}.ertr"));
    let jsonl_path = dir.join(format!("workload_{sha}.trace.jsonl"));
    if let Err(e) = trace.save(&bin_path) {
        eprintln!("could not write {}: {e}", bin_path.display());
    }
    if let Err(e) = trace.save_jsonl(&jsonl_path) {
        eprintln!("could not write {}: {e}", jsonl_path.display());
    }
    let reloaded = InjectionTrace::load(&bin_path).expect("binary trace round trip");
    assert_eq!(reloaded, trace, "binary round trip must be lossless");
    let reloaded_jsonl = InjectionTrace::load_jsonl(&jsonl_path).expect("JSONL trace round trip");
    assert_eq!(reloaded_jsonl, trace, "JSONL round trip must be lossless");
    println!(
        "persisted + reloaded both formats: {} and {}",
        bin_path.display(),
        jsonl_path.display()
    );

    // 3. Conformance: self-replay reproduces the recording byte-identically.
    let trace = Arc::new(reloaded);
    let self_replay = run_once_replayed(
        recording_config(),
        &trace,
        bench.plan(recording_config().schedule.window),
    );
    assert_eq!(
        self_replay, recorded_result,
        "replay against the recording configuration must reproduce the RunResult byte-identically"
    );
    println!("self-replay conformance: RunResult byte-identical to the recording\n");

    // 4. Replay across all four modes, parallel and sequential.
    let points: Vec<RunPoint> = NetworkMode::all()
        .iter()
        .map(|&m| replay_point(&bench, &trace, m))
        .collect();
    let seq_points = points.clone();
    let window = recording_config().schedule.window;
    let replayed = run_points_traced(bench.threads, points);
    let diffs = {
        let base = latency_by_id(&replayed[0].1.packets);
        NetworkMode::all()
            .iter()
            .zip(&replayed)
            .map(|(&m, (r, t))| diff_mode(m, *r, &base, t, window))
            .collect::<Vec<_>>()
    };
    let report = report_json(&sha, bench.quick, &trace, &diffs);

    let seq_replayed = run_points_traced(NonZeroUsize::MIN, seq_points);
    let seq_diffs = {
        let base = latency_by_id(&seq_replayed[0].1.packets);
        NetworkMode::all()
            .iter()
            .zip(&seq_replayed)
            .map(|(&m, (r, t))| diff_mode(m, *r, &base, t, window))
            .collect::<Vec<_>>()
    };
    let seq_report = report_json(&sha, bench.quick, &trace, &seq_diffs);
    assert_eq!(
        report, seq_report,
        "replay report must be byte-identical across thread counts"
    );
    println!(
        "determinism check: {} threads vs sequential -> byte-identical report ({} bytes)\n",
        bench.threads,
        report.len()
    );

    // Console summary.
    let mut t = Table::new(vec![
        "mode",
        "delivered",
        "latency",
        "power mW",
        "mean Δlat",
        "p95 |Δ|",
        "max |Δ|",
        "missing",
    ])
    .with_title(format!(
        "packet-for-packet replay vs NP-NB baseline ({} packets recorded)",
        trace.entries.len()
    ));
    for d in &diffs {
        t.row(vec![
            d.mode.name().to_string(),
            format!("{}", d.matched + d.extra),
            format!("{:.1}", d.result.latency),
            format!("{:.1}", d.result.power_mw),
            format!("{:+.2}", d.mean_delta),
            format!("{}", d.p95_abs_delta),
            format!("{}", d.max_abs_delta),
            format!("{}", d.missing),
        ]);
    }
    println!("{}", t.render());

    // The baseline diffed against itself must be empty — the executable
    // form of "record → replay → diff is empty on the identical config".
    let self_diff = &diffs[0];
    assert_eq!(
        (self_diff.missing, self_diff.extra, self_diff.max_abs_delta),
        (0, 0, 0),
        "identical-configuration replay must diff empty"
    );
    println!("baseline self-diff: empty (0 missing, 0 extra, max |Δ| = 0)");

    let report_path = dir.join(format!("REPLAY_{sha}.json"));
    match std::fs::write(&report_path, &report) {
        Ok(()) => println!("\nwrote {}", report_path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", report_path.display()),
    }
}
