//! Scaling study: how E-RAPID's reconfiguration gains and control-plane
//! overhead grow with board count — the dimension the paper's conclusion
//! cares about ("the dynamic bandwidth reallocation techniques proposed in
//! this paper provides complete flexibility to re-allocate all system
//! bandwidth").
//!
//! Sweeps B ∈ {4, 8, 16, 32} boards (D = 8 nodes each), complement traffic
//! (DBR's best case) and uniform (its no-op case), comparing NP-NB and
//! P-B, and reporting the five-stage protocol latency as a fraction of
//! `R_w`. All 16 runs fan out over the worker pool (`ERAPID_THREADS`).
//!
//! Besides the table, the run writes `SCALING_<git-sha>.json` with per-B
//! wall times, a per-phase breakdown (one profiled P-B complement run per
//! B), memory figures (analytic per-system footprint + process peak
//! RSS) and a per-B sharded-vs-sequential speedup column (one P-B
//! complement point timed with the board-sharded engine, DESIGN.md §12,
//! against the sequential engine — identical results asserted), so the
//! O(B²) state and O(B³) channel-bank growth *and* the intra-point
//! parallel yield are tracked across commits. A `route_comparison` object
//! additionally pins this run's B=32 route-phase cycles/sec against the
//! best committed artifact, so router hot-path speedups (e.g. the bitset
//! rewrite, DESIGN.md §16) are visible in the artifact trajectory. The JSON records the actual
//! run-level and point-level worker counts in use plus the machine's
//! hardware thread count, so a figure from a 1-core CI box is
//! distinguishable from a workstation run.
//!
//! ```text
//! cargo run --release -p erapid-bench --bin scaling
//! ```

use erapid_bench::{git_sha, BenchConfig};
use erapid_core::config::{NetworkMode, SystemConfig};
use erapid_core::experiment::{default_plan, TraceSource};
use erapid_core::runner::{available_threads, run_points_timed_sharded, RunPoint};
use erapid_core::system::PhaseTimers;
use erapid_core::System;
use netstats::table::Table;
use reconfig::stages::ProtocolTiming;
use std::num::NonZeroUsize;
use traffic::pattern::TrafficPattern;

const BOARDS: [u16; 4] = [4, 8, 16, 32];
const LOAD: f64 = 0.6;

fn config(boards: u16, mode: NetworkMode) -> SystemConfig {
    let mut cfg = SystemConfig::paper64(mode);
    cfg.boards = boards;
    cfg.nodes_per_board = 8;
    cfg.timing = ProtocolTiming {
        boards,
        lcs_per_board: 8,
        ..ProtocolTiming::paper64()
    };
    cfg
}

fn point(boards: u16, mode: NetworkMode, pattern: &TrafficPattern, load: f64) -> RunPoint {
    let cfg = config(boards, mode);
    let plan = default_plan(cfg.schedule.window);
    RunPoint {
        cfg,
        pattern: pattern.clone(),
        load,
        plan,
        source: TraceSource::Generate,
    }
}

/// Peak resident set size in kB (`VmHWM` from /proc, Linux only; 0
/// elsewhere).
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Extracts `"<key>": <number>` from a JSON fragment (no serde in the
/// workspace — the artifact format is ours, a string scan is exact
/// enough).
fn parse_num(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Best committed B=32 route-phase rate: scans `SCALING_*.json` artifacts
/// in the working directory for the B=32 phase profile and returns
/// (file, route-phase cycles/sec). This is the "before" of the route
/// comparison row — the current run supplies the "after", making router
/// hot-path speedups visible in the committed artifact trajectory.
fn committed_route_rate() -> Option<(String, f64)> {
    let mut best: Option<(String, f64)> = None;
    for entry in std::fs::read_dir(".").ok()?.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !(name.starts_with("SCALING_") && name.ends_with(".json")) {
            continue;
        }
        let Ok(json) = std::fs::read_to_string(entry.path()) else {
            continue;
        };
        // The B=32 entry under "phase_profiles" (the "rows" array above it
        // also mentions boards 32, so anchor past the key first).
        let Some(profs) = json.find("\"phase_profiles\"") else {
            continue;
        };
        let tail = &json[profs..];
        let Some(b32) = tail.find("\"boards\": 32") else {
            continue;
        };
        let seg = match tail[b32..].find('}') {
            Some(e) => &tail[b32..b32 + e],
            None => &tail[b32..],
        };
        let (Some(cycles), Some(route_s)) = (parse_num(seg, "cycles"), parse_num(seg, "route_s"))
        else {
            continue;
        };
        if route_s <= 0.0 {
            continue;
        }
        let rate = cycles / route_s;
        if best.as_ref().is_none_or(|(_, r)| rate > *r) {
            best = Some((name, rate));
        }
    }
    best
}

/// Per-B profile: one P-B complement run stepped with phase timers, plus
/// the system's analytic memory footprint.
struct BoardProfile {
    boards: u16,
    cycles: u64,
    timers: PhaseTimers,
    memory_bytes: usize,
}

/// One P-B complement point timed with the sequential engine and again
/// with the board-sharded engine on `workers` workers, results asserted
/// identical.
struct Speedup {
    boards: u16,
    workers: usize,
    seq_wall_s: f64,
    sharded_wall_s: f64,
}

impl Speedup {
    fn ratio(&self) -> f64 {
        self.seq_wall_s / self.sharded_wall_s.max(1e-9)
    }
}

fn speedup(boards: u16, workers: NonZeroUsize) -> Speedup {
    let run = |pt: NonZeroUsize| {
        let start = std::time::Instant::now();
        let r = point(boards, NetworkMode::PB, &TrafficPattern::Complement, LOAD).run_with(pt);
        (r, start.elapsed().as_secs_f64())
    };
    let (seq, seq_wall_s) = run(NonZeroUsize::MIN);
    let (sharded, sharded_wall_s) = run(workers);
    assert_eq!(
        seq, sharded,
        "B={boards}: sharded run diverged from sequential"
    );
    Speedup {
        boards,
        workers: workers.get(),
        seq_wall_s,
        sharded_wall_s,
    }
}

fn profile(boards: u16) -> BoardProfile {
    let cfg = config(boards, NetworkMode::PB);
    let plan = default_plan(cfg.schedule.window);
    let mut sys = System::new(cfg, TrafficPattern::Complement, LOAD, plan);
    let memory_bytes = sys.approx_memory_bytes();
    let mut timers = PhaseTimers::default();
    let cycles = sys.run_profiled(&mut timers);
    BoardProfile {
        boards,
        cycles,
        timers,
        memory_bytes,
    }
}

fn main() {
    let bench = BenchConfig::from_env();
    let sha = git_sha();
    println!("=== scaling with board count (D = 8, load {LOAD}) @ {sha} ===\n");

    // One (NP-NB, P-B) pair per (boards, pattern) row, flattened in row
    // order so the parallel results zip straight back onto the table.
    let grid: Vec<(u16, TrafficPattern)> = BOARDS
        .iter()
        .flat_map(|&b| {
            [TrafficPattern::Complement, TrafficPattern::Uniform]
                .into_iter()
                .map(move |p| (b, p))
        })
        .collect();
    let points: Vec<RunPoint> = grid
        .iter()
        .flat_map(|(boards, pattern)| {
            [NetworkMode::NpNb, NetworkMode::PB]
                .into_iter()
                .map(|mode| point(*boards, mode, pattern, LOAD))
        })
        .collect();
    let timed = run_points_timed_sharded(bench.threads, bench.point_threads, points);

    let mut t = Table::new(vec![
        "boards",
        "nodes",
        "pattern",
        "NP-NB thr",
        "P-B thr",
        "gain",
        "NP-NB pwr",
        "P-B pwr",
        "grants",
        "dbr latency",
        "of R_w",
        "wall",
    ])
    .with_title("complement gains grow with the wavelengths available to borrow");
    for (i, (boards, pattern)) in grid.iter().enumerate() {
        let (base, base_wall) = &timed[2 * i];
        let (pb, pb_wall) = &timed[2 * i + 1];
        let timing = config(*boards, NetworkMode::PB).timing;
        t.row(vec![
            format!("{boards}"),
            format!("{}", *boards as u32 * 8),
            pattern.name().to_string(),
            format!("{:.4}", base.throughput),
            format!("{:.4}", pb.throughput),
            format!("{:.2}x", pb.throughput / base.throughput.max(1e-12)),
            format!("{:.0}", base.power_mw),
            format!("{:.0}", pb.power_mw),
            format!("{}", pb.grants),
            format!("{} cyc", timing.dbr_latency()),
            format!("{:.1}%", timing.dbr_latency() as f64 / 2000.0 * 100.0),
            format!("{:.2}s", base_wall.as_secs_f64() + pb_wall.as_secs_f64()),
        ]);
    }
    println!("{}", t.render());
    println!("Reading: under complement, a B-board system leaves B-2 idle");
    println!("wavelengths per destination for DBR to hand to the hot flow, so");
    println!("the P-B gain grows with B (2.7x at 4 boards, ~6x at 8) until");
    println!("the destination board's electrical ingress becomes the new");
    println!("bottleneck (the 16-board gain plateaus — all reconfigured");
    println!("wavelengths funnel into one board's IBI). The control-plane");
    println!("cost grows linearly in B but stays a few percent of the fixed");
    println!("2000-cycle window. Uniform stays a no-op at every scale.");

    println!("\nper-B phase profile (P-B complement, one run each):");
    let profiles: Vec<BoardProfile> = BOARDS.iter().map(|&b| profile(b)).collect();
    for p in &profiles {
        let total = p.timers.total().as_secs_f64().max(1e-9);
        let pct = |d: std::time::Duration| 100.0 * d.as_secs_f64() / total;
        println!(
            "  B={:<3} {:>8} cycles  {:>7.2}s  mem ~{:>6.1} MiB  \
             reconfig {:>4.1}%  inject {:>4.1}%  route {:>4.1}%  optical {:>4.1}%  stats {:>4.1}%",
            p.boards,
            p.cycles,
            total,
            p.memory_bytes as f64 / (1024.0 * 1024.0),
            pct(p.timers.reconfig),
            pct(p.timers.inject),
            pct(p.timers.route),
            pct(p.timers.optical),
            pct(p.timers.stats),
        );
    }
    let rss = peak_rss_kb();
    println!("  peak RSS: {rss} kB");

    // Route-phase before/after at B=32: this run's route rate against the
    // best committed SCALING artifact (read before this run's file is
    // written, so "before" is always a prior commit's number).
    let b32 = profiles
        .last()
        .expect("BOARDS sweep is non-empty, ends at B=32");
    let b32_route_s = b32.timers.route.as_secs_f64();
    let after_rate = b32.cycles as f64 / b32_route_s.max(1e-9);
    let before = committed_route_rate();
    let route_cmp_json = match &before {
        Some((file, before_rate)) => {
            println!(
                "\nroute-phase comparison (B=32, P-B complement): \
                 {before_rate:.0} -> {after_rate:.0} route cycles/sec \
                 ({:.2}x vs {file})",
                after_rate / before_rate.max(1e-9)
            );
            format!(
                "  \"route_comparison\": {{\"boards\": 32, \"cycles\": {}, \"route_s\": {:.6}, \"route_cycles_per_sec\": {:.0}, \"baseline_file\": \"{}\", \"baseline_route_cycles_per_sec\": {:.0}, \"speedup_vs_baseline\": {:.3}}},\n",
                b32.cycles,
                b32_route_s,
                after_rate,
                file,
                before_rate,
                after_rate / before_rate.max(1e-9),
            )
        }
        None => {
            println!(
                "\nroute-phase comparison (B=32): {after_rate:.0} route cycles/sec \
                 (no committed SCALING baseline found)"
            );
            format!(
                "  \"route_comparison\": {{\"boards\": 32, \"cycles\": {}, \"route_s\": {:.6}, \"route_cycles_per_sec\": {:.0}, \"baseline_file\": null}},\n",
                b32.cycles, b32_route_s, after_rate,
            )
        }
    };

    // Per-B intra-point yield: the board-sharded engine against the
    // sequential one, same point, identical results asserted. Worker
    // count: the ERAPID_POINT_THREADS knob when set above 1, else up to 4
    // hardware threads (a 1-core box honestly reports ~1x).
    let shard_workers = if bench.point_threads.get() > 1 {
        bench.point_threads
    } else {
        NonZeroUsize::new(available_threads().get().min(4)).unwrap_or(NonZeroUsize::MIN)
    };
    println!(
        "\nper-B sharded-vs-sequential speedup (P-B complement, {} workers):",
        shard_workers
    );
    let speedups: Vec<Speedup> = BOARDS.iter().map(|&b| speedup(b, shard_workers)).collect();
    for s in &speedups {
        println!(
            "  B={:<3} seq {:>7.2}s  sharded {:>7.2}s  speedup {:.2}x",
            s.boards,
            s.seq_wall_s,
            s.sharded_wall_s,
            s.ratio()
        );
    }

    let row_json: Vec<String> = grid
        .iter()
        .enumerate()
        .map(|(i, (boards, pattern))| {
            let (base, base_wall) = &timed[2 * i];
            let (pb, pb_wall) = &timed[2 * i + 1];
            format!(
                "    {{\"boards\": {boards}, \"pattern\": \"{}\", \"npnb_throughput\": {:.6}, \"pb_throughput\": {:.6}, \"npnb_power_mw\": {:.3}, \"pb_power_mw\": {:.3}, \"pb_grants\": {}, \"npnb_wall_s\": {:.6}, \"pb_wall_s\": {:.6}}}",
                pattern.name(),
                base.throughput,
                pb.throughput,
                base.power_mw,
                pb.power_mw,
                pb.grants,
                base_wall.as_secs_f64(),
                pb_wall.as_secs_f64(),
            )
        })
        .collect();
    let profile_json: Vec<String> = profiles
        .iter()
        .map(|p| {
            format!(
                "    {{\"boards\": {}, \"cycles\": {}, \"memory_bytes\": {}, \"reconfig_s\": {:.6}, \"inject_s\": {:.6}, \"route_s\": {:.6}, \"optical_s\": {:.6}, \"stats_s\": {:.6}}}",
                p.boards,
                p.cycles,
                p.memory_bytes,
                p.timers.reconfig.as_secs_f64(),
                p.timers.inject.as_secs_f64(),
                p.timers.route.as_secs_f64(),
                p.timers.optical.as_secs_f64(),
                p.timers.stats.as_secs_f64(),
            )
        })
        .collect();
    let speedup_json: Vec<String> = speedups
        .iter()
        .map(|s| {
            format!(
                "    {{\"boards\": {}, \"workers\": {}, \"seq_wall_s\": {:.6}, \"sharded_wall_s\": {:.6}, \"speedup\": {:.4}, \"sharded_identical\": true}}",
                s.boards,
                s.workers,
                s.seq_wall_s,
                s.sharded_wall_s,
                s.ratio(),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"git_sha\": \"{sha}\",\n  \"threads\": {threads},\n  \"point_threads\": {point_threads},\n  \"hw_threads\": {hw_threads},\n  \"workload\": {{\"nodes_per_board\": 8, \"boards\": [4, 8, 16, 32], \"load\": {LOAD}, \"patterns\": [\"complement\", \"uniform\"], \"modes\": [\"NP-NB\", \"P-B\"]}},\n  \"rows\": [\n{rows}\n  ],\n  \"phase_profiles\": [\n{profs}\n  ],\n  \"sharded_speedups\": [\n{speedups}\n  ],\n{route_cmp}  \"peak_rss_kb\": {rss}\n}}\n",
        route_cmp = route_cmp_json,
        threads = bench.threads,
        point_threads = bench.point_threads,
        hw_threads = available_threads(),
        rows = row_json.join(",\n"),
        profs = profile_json.join(",\n"),
        speedups = speedup_json.join(",\n"),
    );
    let path = format!("SCALING_{sha}.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}
