//! Scaling study: how E-RAPID's reconfiguration gains and control-plane
//! overhead grow with board count — the dimension the paper's conclusion
//! cares about ("the dynamic bandwidth reallocation techniques proposed in
//! this paper provides complete flexibility to re-allocate all system
//! bandwidth").
//!
//! Sweeps B ∈ {4, 8, 16} boards (D = 8 nodes each), complement traffic
//! (DBR's best case) and uniform (its no-op case), comparing NP-NB and
//! P-B, and reporting the five-stage protocol latency as a fraction of
//! `R_w`. All 12 runs fan out over the worker pool (`ERAPID_THREADS`).
//!
//! ```text
//! cargo run --release -p erapid-bench --bin scaling
//! ```

use erapid_bench::BenchConfig;
use erapid_core::config::{NetworkMode, SystemConfig};
use erapid_core::experiment::{default_plan, TraceSource};
use erapid_core::runner::{run_points, RunPoint};
use netstats::table::Table;
use reconfig::stages::ProtocolTiming;
use traffic::pattern::TrafficPattern;

fn config(boards: u16, mode: NetworkMode) -> SystemConfig {
    let mut cfg = SystemConfig::paper64(mode);
    cfg.boards = boards;
    cfg.nodes_per_board = 8;
    cfg.timing = ProtocolTiming {
        boards,
        lcs_per_board: 8,
        ..ProtocolTiming::paper64()
    };
    cfg
}

fn point(boards: u16, mode: NetworkMode, pattern: &TrafficPattern, load: f64) -> RunPoint {
    let cfg = config(boards, mode);
    let plan = default_plan(cfg.schedule.window);
    RunPoint {
        cfg,
        pattern: pattern.clone(),
        load,
        plan,
        source: TraceSource::Generate,
    }
}

fn main() {
    let bench = BenchConfig::from_env();
    let load = 0.6;
    println!("=== scaling with board count (D = 8, load {load}) ===\n");

    // One (NP-NB, P-B) pair per (boards, pattern) row, flattened in row
    // order so the parallel results zip straight back onto the table.
    let grid: Vec<(u16, TrafficPattern)> = [4u16, 8, 16]
        .iter()
        .flat_map(|&b| {
            [TrafficPattern::Complement, TrafficPattern::Uniform]
                .into_iter()
                .map(move |p| (b, p))
        })
        .collect();
    let points: Vec<RunPoint> = grid
        .iter()
        .flat_map(|(boards, pattern)| {
            [NetworkMode::NpNb, NetworkMode::PB]
                .into_iter()
                .map(|mode| point(*boards, mode, pattern, load))
        })
        .collect();
    let results = run_points(bench.threads, points);

    let mut t = Table::new(vec![
        "boards",
        "nodes",
        "pattern",
        "NP-NB thr",
        "P-B thr",
        "gain",
        "NP-NB pwr",
        "P-B pwr",
        "grants",
        "dbr latency",
        "of R_w",
    ])
    .with_title("complement gains grow with the wavelengths available to borrow");
    for (i, (boards, pattern)) in grid.iter().enumerate() {
        let base = &results[2 * i];
        let pb = &results[2 * i + 1];
        let timing = config(*boards, NetworkMode::PB).timing;
        t.row(vec![
            format!("{boards}"),
            format!("{}", *boards as u32 * 8),
            pattern.name().to_string(),
            format!("{:.4}", base.throughput),
            format!("{:.4}", pb.throughput),
            format!("{:.2}x", pb.throughput / base.throughput.max(1e-12)),
            format!("{:.0}", base.power_mw),
            format!("{:.0}", pb.power_mw),
            format!("{}", pb.grants),
            format!("{} cyc", timing.dbr_latency()),
            format!("{:.1}%", timing.dbr_latency() as f64 / 2000.0 * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!("Reading: under complement, a B-board system leaves B-2 idle");
    println!("wavelengths per destination for DBR to hand to the hot flow, so");
    println!("the P-B gain grows with B (2.7x at 4 boards, ~6x at 8) until");
    println!("the destination board's electrical ingress becomes the new");
    println!("bottleneck (the 16-board gain plateaus — all reconfigured");
    println!("wavelengths funnel into one board's IBI). The control-plane");
    println!("cost grows linearly in B but stays a few percent of the fixed");
    println!("2000-cycle window. Uniform stays a no-op at every scale.");
}
