//! Performance report: times a fixed reference workload sequentially and
//! in parallel, proves the two byte-identical, and writes the numbers to
//! `BENCH_<git-sha>.json` so perf changes are comparable across commits.
//!
//! Reference workload: the paper's 64-node system, uniform + complement
//! panels (4 modes × 3 loads each, default phase plan, default seed).
//!
//! ```text
//! cargo run --release -p erapid-bench --bin perfreport
//! ERAPID_THREADS=4 cargo run --release -p erapid-bench --bin perfreport
//! ```

use erapid_bench::{git_sha, BenchConfig};
use erapid_core::config::{NetworkMode, SystemConfig};
use erapid_core::experiment::{default_plan, TraceSource};
use erapid_core::runner::{run_points, RunPoint};
use std::num::NonZeroUsize;
use std::time::Instant;
use traffic::pattern::TrafficPattern;

/// Peak resident set size in kB (`VmHWM` from /proc, Linux only; 0
/// elsewhere).
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

struct PanelReport {
    name: &'static str,
    sequential_s: f64,
    parallel_s: f64,
    sim_cycles: u64,
}

fn main() {
    let cfg = BenchConfig::from_env();
    let one = NonZeroUsize::new(1).unwrap();
    let loads = [0.2f64, 0.5, 0.8];
    let patterns = [
        ("uniform", TrafficPattern::Uniform),
        ("complement", TrafficPattern::Complement),
    ];
    let sha = git_sha();
    println!(
        "=== perfreport @ {sha}: paper64, {} patterns x 4 modes x {} loads, {} threads ===\n",
        patterns.len(),
        loads.len(),
        cfg.threads
    );

    let mut panels: Vec<PanelReport> = Vec::new();
    for (name, pattern) in &patterns {
        let points: Vec<RunPoint> = NetworkMode::all()
            .iter()
            .flat_map(|&mode| loads.iter().map(move |&l| (mode, l)))
            .map(|(mode, load)| {
                let cfg = SystemConfig::paper64(mode);
                let plan = default_plan(cfg.schedule.window);
                RunPoint {
                    cfg,
                    pattern: pattern.clone(),
                    load,
                    plan,
                    source: TraceSource::Generate,
                }
            })
            .collect();

        let t0 = Instant::now();
        let seq = run_points(one, points.clone());
        let sequential_s = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let par = run_points(cfg.threads, points);
        let parallel_s = t1.elapsed().as_secs_f64();

        assert_eq!(
            seq, par,
            "parallel results diverged from sequential for {name}"
        );
        let sim_cycles: u64 = seq.iter().map(|r| r.cycles).sum();
        println!(
            "  {name:<12} sequential {sequential_s:>7.2}s   parallel {parallel_s:>7.2}s   \
             ({sim_cycles} simulated cycles, results identical)"
        );
        panels.push(PanelReport {
            name,
            sequential_s,
            parallel_s,
            sim_cycles,
        });
    }

    let seq_total: f64 = panels.iter().map(|p| p.sequential_s).sum();
    let par_total: f64 = panels.iter().map(|p| p.parallel_s).sum();
    let cycles_total: u64 = panels.iter().map(|p| p.sim_cycles).sum();
    let speedup = seq_total / par_total.max(1e-9);
    let cps_single = cycles_total as f64 / seq_total.max(1e-9);
    let cps_parallel = cycles_total as f64 / par_total.max(1e-9);
    let rss = peak_rss_kb();

    println!();
    println!("  totals: sequential {seq_total:.2}s, parallel {par_total:.2}s  ->  {speedup:.2}x on {} threads", cfg.threads);
    println!("  single-thread rate: {cps_single:.0} sim cycles/sec (per-run hot path)");
    println!("  parallel rate:      {cps_parallel:.0} sim cycles/sec");
    println!("  peak RSS: {rss} kB");

    let panel_json: Vec<String> = panels
        .iter()
        .map(|p| {
            format!(
                "    {{\"pattern\": \"{}\", \"sequential_s\": {:.6}, \"parallel_s\": {:.6}, \"sim_cycles\": {}}}",
                p.name, p.sequential_s, p.parallel_s, p.sim_cycles
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"git_sha\": \"{sha}\",\n  \"threads\": {threads},\n  \"workload\": {{\"system\": \"paper64\", \"modes\": 4, \"patterns\": [\"uniform\", \"complement\"], \"loads\": [0.2, 0.5, 0.8]}},\n  \"panels\": [\n{panels}\n  ],\n  \"totals\": {{\n    \"sequential_s\": {seq_total:.6},\n    \"parallel_s\": {par_total:.6},\n    \"speedup\": {speedup:.3},\n    \"sim_cycles\": {cycles_total},\n    \"cycles_per_sec_single\": {cps_single:.0},\n    \"cycles_per_sec_parallel\": {cps_parallel:.0}\n  }},\n  \"peak_rss_kb\": {rss},\n  \"parallel_identical\": true\n}}\n",
        threads = cfg.threads,
        panels = panel_json.join(",\n"),
    );
    let path = format!("BENCH_{sha}.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}
