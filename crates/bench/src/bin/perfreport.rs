//! Performance report: times a fixed reference workload sequentially and
//! in parallel, proves the two byte-identical, and writes the numbers to
//! `BENCH_<git-sha>.json` so perf changes are comparable across commits.
//!
//! Reference workload: the paper's 64-node system, uniform + complement
//! panels (4 modes × 3 loads each, default phase plan, default seed).
//! The report additionally carries:
//!
//! * per-point wall times next to the scheduler's cost estimate (the
//!   feedback loop on longest-first dispatch),
//! * a per-phase wall-time breakdown (reconfig / inject / route /
//!   optical / stats) from a profiled representative run, including the
//!   route-phase share (`route_frac`) that `--smoke` gates against
//!   regression,
//! * a fixed reduced-grid smoke rate (`cycles_per_sec_smoke`) that
//!   `verify.sh` re-measures via `--smoke` and compares against the
//!   committed baseline, failing on a >20% regression,
//! * an intra-point speedup measurement: the heaviest smoke point run
//!   through the board-sharded engine (DESIGN.md §12) against the
//!   sequential engine, identical results asserted and — whenever the
//!   machine actually has >= 2 hardware threads — gated at >= 1.5x.
//!
//! ```text
//! cargo run --release -p erapid-bench --bin perfreport
//! cargo run --release -p erapid-bench --bin perfreport -- --smoke
//! ERAPID_THREADS=4 cargo run --release -p erapid-bench --bin perfreport
//! cargo run --release -p erapid-bench --bin perfreport -- --seq   # force 1x1 threading
//! ```

use desim::phase::PhasePlan;
use erapid_bench::{git_sha, BenchConfig};
use erapid_core::config::{NetworkMode, SystemConfig};
use erapid_core::experiment::{default_plan, TraceSource};
use erapid_core::runner::{available_threads, run_points_timed, RunPoint};
use erapid_core::system::PhaseTimers;
use erapid_core::System;
use std::num::NonZeroUsize;
use std::time::Instant;
use traffic::pattern::TrafficPattern;

/// Peak resident set size in kB (`VmHWM` from /proc, Linux only; 0
/// elsewhere).
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

struct PanelReport {
    name: &'static str,
    sequential_s: f64,
    parallel_s: f64,
    sim_cycles: u64,
    /// Per point: (mode, load, estimated cost, sequential wall seconds).
    points: Vec<(&'static str, f64, u128, f64)>,
}

/// The fixed smoke grid: paper64, NP-NB + P-B × uniform + complement at
/// load 0.5 under a short plan. Deliberately frozen — `verify.sh`
/// compares this rate across commits, so changing the grid invalidates
/// every committed baseline.
fn smoke_points() -> Vec<RunPoint> {
    let mut points = Vec::new();
    for mode in [NetworkMode::NpNb, NetworkMode::PB] {
        for pattern in [TrafficPattern::Uniform, TrafficPattern::Complement] {
            let cfg = SystemConfig::paper64(mode);
            let w = cfg.schedule.window;
            points.push(RunPoint {
                cfg,
                pattern,
                load: 0.5,
                plan: PhasePlan::new(w, 3 * w).with_max_cycles(5 * w),
                source: TraceSource::Generate,
            });
        }
    }
    points
}

/// Measures the smoke grid sequentially, returning (cycles/sec, cycles).
fn measure_smoke() -> (f64, u64) {
    let one = NonZeroUsize::new(1).unwrap();
    let t0 = Instant::now();
    let results = run_points_timed(one, smoke_points());
    let wall = t0.elapsed().as_secs_f64();
    let cycles: u64 = results.iter().map(|(r, _)| r.cycles).sum();
    (cycles as f64 / wall.max(1e-9), cycles)
}

/// Times the heaviest smoke point (by the scheduler's own cost estimate)
/// with the sequential engine and again with the board-sharded engine on
/// `workers` workers, asserting identical results. Returns
/// (sequential_s, sharded_s, speedup).
fn measure_intra_point(workers: NonZeroUsize) -> (f64, f64, f64) {
    let point = smoke_points()
        .into_iter()
        .max_by_key(|p| p.estimated_cost())
        .expect("smoke grid is non-empty");
    let t0 = Instant::now();
    let seq = point.clone().run_with(NonZeroUsize::MIN);
    let seq_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let sharded = point.run_with(workers);
    let sharded_s = t1.elapsed().as_secs_f64();
    assert_eq!(seq, sharded, "sharded point diverged from sequential");
    (seq_s, sharded_s, seq_s / sharded_s.max(1e-9))
}

/// Worker count for the intra-point measurement: up to 4 hardware
/// threads, 1 when `--seq` was passed.
fn intra_point_workers(seq_flag: bool) -> NonZeroUsize {
    if seq_flag {
        NonZeroUsize::MIN
    } else {
        NonZeroUsize::new(available_threads().get().min(4)).unwrap_or(NonZeroUsize::MIN)
    }
}

/// Prints and (when real parallelism exists) gates the intra-point
/// speedup at >= 1.5x. Exits the process in `strict` mode, panics
/// otherwise — both fail CI the same way.
fn check_intra_point(workers: NonZeroUsize, strict: bool) -> f64 {
    let (seq_s, sharded_s, sp) = measure_intra_point(workers);
    println!(
        "  intra-point: heaviest smoke point seq {seq_s:.2}s  sharded {sharded_s:.2}s  \
         -> {sp:.2}x on {workers} board workers (results identical)"
    );
    if workers.get() >= 2 && available_threads().get() >= 2 {
        if sp < 1.5 {
            if strict {
                eprintln!("FAIL: intra-point speedup {sp:.2}x < 1.5x on {workers} workers");
                std::process::exit(1);
            }
            panic!("intra-point speedup {sp:.2}x < 1.5x on {workers} workers");
        }
        println!("  intra-point speedup gate: {sp:.2}x >= 1.5x OK");
    } else {
        println!("  intra-point speedup gate: skipped (single hardware thread)");
    }
    sp
}

/// Extracts `"<key>": <number>` from a baseline JSON blob (no serde in
/// the workspace — the artifact format is ours, a string scan is exact
/// enough).
fn parse_f64_field(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `"cycles_per_sec_smoke": <number>` from a baseline JSON blob.
fn parse_smoke_rate(json: &str) -> Option<f64> {
    parse_f64_field(json, "cycles_per_sec_smoke")
}

/// Best committed smoke baseline: the max `cycles_per_sec_smoke` across
/// `BENCH_*.json` files in the working directory (older baselines predate
/// the field and are skipped), or an explicit file passed on the CLI.
fn baseline_smoke_rate(explicit: Option<&str>) -> Option<(String, f64)> {
    if let Some(path) = explicit {
        let json = std::fs::read_to_string(path).ok()?;
        return parse_smoke_rate(&json).map(|r| (path.to_string(), r));
    }
    let mut best: Option<(String, f64)> = None;
    for entry in std::fs::read_dir(".").ok()?.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let Ok(json) = std::fs::read_to_string(entry.path()) else {
            continue;
        };
        if let Some(rate) = parse_smoke_rate(&json) {
            if best.as_ref().is_none_or(|(_, b)| rate > *b) {
                best = Some((name, rate));
            }
        }
    }
    best
}

/// Profiles the representative point (paper64 P-B complement at 0.5 —
/// DPM + DBR + full traffic, every phase exercised), returning the phase
/// timers and the simulated cycle count.
fn profile_representative() -> (PhaseTimers, u64) {
    let cfg = SystemConfig::paper64(NetworkMode::PB);
    let plan = default_plan(cfg.schedule.window);
    let mut sys = System::new(cfg, TrafficPattern::Complement, 0.5, plan);
    let mut timers = PhaseTimers::default();
    let cycles = sys.run_profiled(&mut timers);
    (timers, cycles)
}

/// Route-phase share of total cycle time.
fn route_frac(t: &PhaseTimers) -> f64 {
    t.route.as_secs_f64() / t.total().as_secs_f64().max(1e-9)
}

/// `--smoke` mode: re-measure the reduced grid and fail (exit 1) when the
/// rate regressed more than 20% below the committed baseline; likewise
/// fail when the route-phase *share* of the representative profile grew
/// more than 20% over the baseline's `route_frac` (a share gate is
/// box-speed independent — it catches the router hot path slipping back
/// toward dominating the cycle). Then gate the intra-point sharded
/// speedup. With no baseline carrying a field yet, that measurement is
/// informational.
fn run_smoke(baseline_path: Option<&str>, seq_flag: bool) {
    let (rate, cycles) = measure_smoke();
    println!("smoke: {rate:.0} sim cycles/sec ({cycles} cycles, reduced grid, 1 thread)");
    let baseline = baseline_smoke_rate(baseline_path);
    match &baseline {
        Some((path, base)) => {
            let floor = 0.8 * base;
            println!("baseline {path}: {base:.0} cycles/sec (floor {floor:.0})");
            if rate < floor {
                eprintln!("FAIL: smoke rate regressed >20% vs committed baseline");
                std::process::exit(1);
            }
            println!("OK: within 20% of baseline");
        }
        None => println!("no committed baseline with cycles_per_sec_smoke; recording only"),
    }
    let (timers, _) = profile_representative();
    let frac = route_frac(&timers);
    println!(
        "smoke: route-phase share {:.1}% of cycle time",
        100.0 * frac
    );
    match baseline
        .as_ref()
        .and_then(|(path, _)| Some((path, std::fs::read_to_string(path).ok()?)))
        .and_then(|(path, json)| Some((path.clone(), parse_f64_field(&json, "route_frac")?)))
    {
        Some((path, base)) => {
            let ceiling = 1.2 * base;
            println!(
                "baseline {path}: route share {:.1}% (ceiling {:.1}%)",
                100.0 * base,
                100.0 * ceiling
            );
            if frac > ceiling {
                eprintln!("FAIL: route-phase share regressed >20% vs committed baseline");
                std::process::exit(1);
            }
            println!("OK: route share within 20% of baseline");
        }
        None => println!("no committed baseline with route_frac; recording only"),
    }
    check_intra_point(intra_point_workers(seq_flag), true);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seq_flag = args.iter().any(|a| a == "--seq");
    if args.first().map(String::as_str) == Some("--smoke") {
        let baseline = args
            .get(1)
            .filter(|a| !a.starts_with("--"))
            .map(String::as_str);
        run_smoke(baseline, seq_flag);
        return;
    }

    let cfg = BenchConfig::from_env();
    let one = NonZeroUsize::new(1).unwrap();
    let loads = [0.2f64, 0.5, 0.8];
    let patterns = [
        ("uniform", TrafficPattern::Uniform),
        ("complement", TrafficPattern::Complement),
    ];
    let sha = git_sha();
    println!(
        "=== perfreport @ {sha}: paper64, {} patterns x 4 modes x {} loads, {} threads ===\n",
        patterns.len(),
        loads.len(),
        cfg.threads
    );

    let mut panels: Vec<PanelReport> = Vec::new();
    for (name, pattern) in &patterns {
        let points: Vec<RunPoint> = NetworkMode::all()
            .iter()
            .flat_map(|&mode| loads.iter().map(move |&l| (mode, l)))
            .map(|(mode, load)| {
                let cfg = SystemConfig::paper64(mode);
                let plan = default_plan(cfg.schedule.window);
                RunPoint {
                    cfg,
                    pattern: pattern.clone(),
                    load,
                    plan,
                    source: TraceSource::Generate,
                }
            })
            .collect();
        let labels: Vec<(&'static str, f64, u128)> = NetworkMode::all()
            .iter()
            .flat_map(|&mode| loads.iter().map(move |&l| (mode, l)))
            .zip(&points)
            .map(|((mode, load), p)| (mode.name(), load, p.estimated_cost()))
            .collect();

        let t0 = Instant::now();
        let seq = run_points_timed(one, points.clone());
        let sequential_s = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let par = run_points_timed(cfg.threads, points);
        let parallel_s = t1.elapsed().as_secs_f64();

        let seq_results: Vec<_> = seq.iter().map(|(r, _)| *r).collect();
        let par_results: Vec<_> = par.iter().map(|(r, _)| *r).collect();
        assert_eq!(
            seq_results, par_results,
            "parallel results diverged from sequential for {name}"
        );
        let sim_cycles: u64 = seq_results.iter().map(|r| r.cycles).sum();
        println!(
            "  {name:<12} sequential {sequential_s:>7.2}s   parallel {parallel_s:>7.2}s   \
             ({sim_cycles} simulated cycles, results identical)"
        );
        let point_rows = labels
            .iter()
            .zip(&seq)
            .map(|(&(mode, load, cost), (_, wall))| (mode, load, cost, wall.as_secs_f64()))
            .collect();
        panels.push(PanelReport {
            name,
            sequential_s,
            parallel_s,
            sim_cycles,
            points: point_rows,
        });
    }

    let seq_total: f64 = panels.iter().map(|p| p.sequential_s).sum();
    let par_total: f64 = panels.iter().map(|p| p.parallel_s).sum();
    let cycles_total: u64 = panels.iter().map(|p| p.sim_cycles).sum();
    let speedup = seq_total / par_total.max(1e-9);
    let cps_single = cycles_total as f64 / seq_total.max(1e-9);
    let cps_parallel = cycles_total as f64 / par_total.max(1e-9);

    println!();
    println!("  totals: sequential {seq_total:.2}s, parallel {par_total:.2}s  ->  {speedup:.2}x on {} threads", cfg.threads);
    println!("  single-thread rate: {cps_single:.0} sim cycles/sec (per-run hot path)");
    println!("  parallel rate:      {cps_parallel:.0} sim cycles/sec");

    // Load-imbalance regression gate: longest-first dispatch must buy a
    // real speedup whenever real parallelism exists. Meaningless on a
    // single hardware thread (or ERAPID_THREADS=1), where the dispatch
    // degenerates to sequential.
    if cfg.threads.get() >= 2 && available_threads().get() >= 2 {
        assert!(
            speedup >= 1.5,
            "parallel speedup {speedup:.2}x < 1.5x on {} threads: load-balancing regression",
            cfg.threads
        );
        println!("  speedup gate: {speedup:.2}x >= 1.5x OK");
    } else {
        println!("  speedup gate: skipped (single hardware thread)");
    }

    // Per-phase breakdown of one representative point (P-B complement at
    // 0.5 exercises every phase: DPM + DBR + full traffic).
    let (timers, prof_cycles) = profile_representative();
    let prof_total = timers.total().as_secs_f64().max(1e-9);
    let frac = |d: std::time::Duration| d.as_secs_f64() / prof_total;
    let prof_route_frac = route_frac(&timers);
    println!(
        "  phase profile (P-B complement 0.5, {prof_cycles} cycles): \
         reconfig {:.1}%  inject {:.1}%  route {:.1}%  optical {:.1}%  stats {:.1}%",
        100.0 * frac(timers.reconfig),
        100.0 * frac(timers.inject),
        100.0 * frac(timers.route),
        100.0 * frac(timers.optical),
        100.0 * frac(timers.stats),
    );

    let (cps_smoke, smoke_cycles) = measure_smoke();
    println!("  smoke rate: {cps_smoke:.0} sim cycles/sec ({smoke_cycles} cycles, reduced grid)");

    let ip_workers = intra_point_workers(seq_flag);
    let intra_point_speedup = check_intra_point(ip_workers, false);

    let rss = peak_rss_kb();
    println!("  peak RSS: {rss} kB");

    let panel_json: Vec<String> = panels
        .iter()
        .map(|p| {
            let pts: Vec<String> = p
                .points
                .iter()
                .map(|(mode, load, cost, wall)| {
                    format!(
                        "      {{\"mode\": \"{mode}\", \"load\": {load}, \
                         \"estimated_cost\": {cost}, \"wall_s\": {wall:.6}}}"
                    )
                })
                .collect();
            format!(
                "    {{\"pattern\": \"{}\", \"sequential_s\": {:.6}, \"parallel_s\": {:.6}, \"sim_cycles\": {}, \"points\": [\n{}\n    ]}}",
                p.name,
                p.sequential_s,
                p.parallel_s,
                p.sim_cycles,
                pts.join(",\n")
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"git_sha\": \"{sha}\",\n  \"threads\": {threads},\n  \"workload\": {{\"system\": \"paper64\", \"modes\": 4, \"patterns\": [\"uniform\", \"complement\"], \"loads\": [0.2, 0.5, 0.8]}},\n  \"panels\": [\n{panels}\n  ],\n  \"phase_profile\": {{\n    \"workload\": \"paper64 P-B complement 0.5\",\n    \"cycles\": {prof_cycles},\n    \"reconfig_s\": {reconf:.6},\n    \"inject_s\": {inject:.6},\n    \"route_s\": {route:.6},\n    \"optical_s\": {optical:.6},\n    \"stats_s\": {stats:.6},\n    \"route_frac\": {prof_route_frac:.4}\n  }},\n  \"totals\": {{\n    \"sequential_s\": {seq_total:.6},\n    \"parallel_s\": {par_total:.6},\n    \"speedup\": {speedup:.3},\n    \"sim_cycles\": {cycles_total},\n    \"cycles_per_sec_single\": {cps_single:.0},\n    \"cycles_per_sec_parallel\": {cps_parallel:.0},\n    \"cycles_per_sec_smoke\": {cps_smoke:.0},\n    \"intra_point_workers\": {ip_workers},\n    \"intra_point_speedup\": {intra_point_speedup:.3}\n  }},\n  \"peak_rss_kb\": {rss},\n  \"parallel_identical\": true\n}}\n",
        threads = cfg.threads,
        panels = panel_json.join(",\n"),
        reconf = timers.reconfig.as_secs_f64(),
        inject = timers.inject.as_secs_f64(),
        route = timers.route.as_secs_f64(),
        optical = timers.optical.as_secs_f64(),
        stats = timers.stats.as_secs_f64(),
    );
    let path = format!("BENCH_{sha}.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}
