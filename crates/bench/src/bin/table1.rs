//! Regenerates **Table 1** of the paper: the electrical router parameters
//! and the per-bit-rate optical link power operating points, from the
//! analytic component models with the paper's constants.
//!
//! ```text
//! cargo run --release -p erapid-bench --bin table1
//! ```

use netstats::table::Table;
use photonics::bitrate::{RateLadder, RateLevel};
use photonics::power::{analytic_breakdown, LinkPowerModel};
use photonics::serdes::Serdes;

fn main() {
    println!("=== Table 1: simulation network parameters ===\n");

    let mut router = Table::new(vec!["router parameter", "value"])
        .with_title("Electrical router (SGI-Spider-like)");
    router.row(vec!["channel width", "16 bits"]);
    router.row(vec!["clock", "400 MHz"]);
    router.row(vec!["unidirectional bandwidth", "6.4 Gbps"]);
    router.row(vec!["per-port bidirectional bandwidth", "12.8 Gbps"]);
    router.row(vec!["flow control", "credit-based, 1-cycle credit delay"]);
    router.row(vec!["pipeline", "RC / VA / SA / ST, 1 cycle each"]);
    router.row(vec!["packet size", "64 bytes = 8 flits"]);
    println!("{}", router.render());

    let ladder = RateLadder::paper();
    let paper_totals = LinkPowerModel::paper_table();
    let serdes = Serdes::paper();

    let mut t = Table::new(vec![
        "bit rate",
        "V_DD (V)",
        "VCSEL (mW)",
        "driver (mW)",
        "TIA (mW)",
        "CDR (mW)",
        "PD (mW)",
        "analytic total",
        "paper total",
        "flit cycles",
    ])
    .with_title("Optical link operating points (analytic models vs paper Table 1)");
    for (level, rate) in ladder.iter() {
        let b = analytic_breakdown(rate);
        t.row(vec![
            format!("{} Gbps", rate.gbps),
            format!("{:.2}", rate.vdd),
            format!("{:.4}", b.vcsel_mw),
            format!("{:.2}", b.driver_mw),
            format!("{:.2}", b.tia_mw),
            format!("{:.2}", b.cdr_mw),
            format!("{:.4}", b.photodetector_mw),
            format!("{:.2}", b.total_mw()),
            format!("{:.2}", paper_totals.active_mw(level)),
            format!("{}", serdes.flit_cycles(rate)),
        ]);
    }
    println!("{}", t.render());

    let mut e = Table::new(vec!["bit rate", "energy/bit (pJ), paper totals"])
        .with_title("Energy per bit — why DPM saves power");
    for (level, rate) in ladder.iter() {
        e.row(vec![
            format!("{} Gbps", rate.gbps),
            format!("{:.2}", paper_totals.energy_per_bit_pj(level)),
        ]);
    }
    println!("{}", e.render());

    println!("Component constants (§4.1):");
    println!("  VCSEL slope efficiency 0.42 A/W, I_m = 16.6 mA");
    println!("  C_driver = 0.62 pF, I_ds(5G) = 27.8 mA, C_CDR = 9.26 pF");
    println!("  CDR re-lock 12 cycles; conservative link-disable 65 cycles");
    println!();
    println!("Note: the paper's 26 mW mid-point does not follow from its own");
    println!(
        "scaling laws (the analytic model yields {:.1} mW at 3.3 Gbps /",
        analytic_breakdown(ladder.rate(RateLevel(1))).total_mw()
    );
    println!("0.6 V); the simulation pins the paper's published totals.");
}
