//! Electrical-baseline comparison (§4.1: "The performance of E-RAPID was
//! compared to other electrical networks"): the same 64 nodes and offered
//! traffic through an 8×8 electrical mesh of the identical VC routers vs
//! the E-RAPID P-B optical interconnect. Each load's (E-RAPID, mesh) pair
//! runs as one job on the worker pool (`ERAPID_THREADS`).
//!
//! ```text
//! cargo run --release -p erapid-bench --bin baseline
//! ```

use emesh::{run_mesh, MeshConfig};
use erapid_bench::BenchConfig;
use erapid_core::config::{NetworkMode, SystemConfig};
use erapid_core::experiment::{default_plan, run_once};
use erapid_core::runner::parallel_map;
use netstats::table::Table;
use traffic::pattern::TrafficPattern;

fn main() {
    let bench = BenchConfig::from_env();
    println!("=== E-RAPID (P-B) vs 8x8 electrical mesh, 64 nodes ===\n");
    for (name, pattern) in [
        ("uniform", TrafficPattern::Uniform),
        ("complement", TrafficPattern::Complement),
    ] {
        let mut t = Table::new(vec![
            "load",
            "rate (pkt/n/c)",
            "erapid thr",
            "erapid lat",
            "erapid pwr (mW)",
            "mesh thr",
            "mesh lat",
            "mesh pwr (mW)",
        ])
        .with_title(format!(
            "{name}: identical offered traffic (load normalised to E-RAPID N_c)"
        ));
        let rows = parallel_map(bench.threads, bench.load_axis(), |load| {
            let cfg = SystemConfig::paper64(NetworkMode::PB);
            let rate = cfg.capacity().injection_rate(load);
            let plan = default_plan(cfg.schedule.window);
            let er = run_once(cfg, pattern.clone(), load, plan);
            let mesh = run_mesh(MeshConfig::paper64(), pattern.clone(), rate, plan);
            vec![
                format!("{load:.1}"),
                format!("{rate:.5}"),
                format!("{:.4}", er.throughput),
                format!("{:.1}", er.latency),
                format!("{:.1}", er.power_mw),
                format!("{:.4}", mesh.throughput),
                format!("{:.1}", mesh.latency),
                format!("{:.1}", mesh.power_mw),
            ]
        });
        for row in rows {
            t.row(row);
        }
        println!("{}", t.render());
    }
    println!("Reading: at this small radix, with idealised 1-cycle electrical");
    println!("hops, the mesh matches or beats E-RAPID — its bisection is wide");
    println!("relative to E-RAPID's per-board-pair wavelengths, and E-RAPID");
    println!("pays whole-packet optical serialization (48 cycles at 5 Gbps).");
    println!("The paper's case for optics is at *scale*: electrical links at");
    println!("board-to-board/rack-to-rack distances cannot run at one cycle");
    println!("per hop (§1 — \"increasing bandwidth demands at higher bit");
    println!("rates and longer communication distances are constraining the");
    println!("performance of electrical interconnects\"), and the mesh has no");
    println!("equivalent of wavelength re-allocation or per-link bit-rate");
    println!("scaling — note the complement column, where E-RAPID's P-B");
    println!("overtakes the saturating static assignment at mid loads. The");
    println!("mesh power column (Orion-style per-hop energies + per-router");
    println!("static draw) shows the structural difference: every electrical");
    println!("packet pays ~7 router traversals and the 64 routers leak even");
    println!("when idle, while E-RAPID's optical power tracks lit lasers.");
}
