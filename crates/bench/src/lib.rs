//! Shared harness for the figure/table regeneration binaries.
//!
//! Every binary prints the same rows/series the paper reports and drops a
//! CSV next to the console output (under `results/`, created on demand).
//!
//! Environment knobs — parsed **once** in each binary's `main` by
//! [`BenchConfig::from_env`] and passed down as plain values (library code
//! never reads the environment, so tests can construct any configuration
//! without process-wide races):
//! * `ERAPID_QUICK=1` — quarter-length runs and a 3-point load axis, for
//!   smoke-testing the binaries.
//! * `ERAPID_RESULTS=<dir>` — where CSVs are written (default `results`).
//! * `ERAPID_THREADS=<n>` — worker threads for the run-level executor
//!   (default: all available cores; results are byte-identical for any
//!   value).
//! * `ERAPID_POINT_THREADS=<n>` — board-shard workers *inside* each
//!   point's cycle engine (DESIGN.md §12; default 1 = sequential engine,
//!   0 = all available cores; byte-identical for any value).
//! * `ERAPID_TRACE=<path>` — where the `tracereport` binary writes its
//!   JSONL event trace (a Chrome/Perfetto trace lands next to it).
//!
//! Every binary also accepts a `--seq` escape-hatch flag (handled here in
//! [`BenchConfig::from_env`], no per-binary parsing): it forces both the
//! run-level executor and the per-point cycle engine to a single thread,
//! overriding the env knobs — for debugging and for timing baselines.

use erapid_core::config::{NetworkMode, SystemConfig};
use erapid_core::experiment::{default_plan, paper_loads, run_once, RunResult, TraceSource};
use erapid_core::runner::{self, RunPoint};
use netstats::csv::Csv;
use netstats::table::Table;
use std::num::NonZeroUsize;
use std::path::PathBuf;
use traffic::pattern::TrafficPattern;

pub mod timing;

/// Short commit hash, read straight from `.git` (works offline, no git
/// binary needed). "unknown" outside a checkout. Shared by the binaries
/// that stamp their JSON reports (`BENCH_<sha>.json`,
/// `RESILIENCE_<sha>.json`) so the names agree for one commit.
pub fn git_sha() -> String {
    let head = std::fs::read_to_string(".git/HEAD").unwrap_or_default();
    let head = head.trim();
    let full = if let Some(refname) = head.strip_prefix("ref: ") {
        let refname = refname.trim();
        std::fs::read_to_string(format!(".git/{refname}"))
            .map(|s| s.trim().to_string())
            .ok()
            .filter(|s| !s.is_empty())
            .or_else(|| {
                let packed = std::fs::read_to_string(".git/packed-refs").ok()?;
                packed.lines().find_map(|l| {
                    let (sha, name) = l.split_once(' ')?;
                    (name == refname).then(|| sha.to_string())
                })
            })
            .unwrap_or_default()
    } else {
        head.to_string()
    };
    if full.is_empty() {
        "unknown".to_string()
    } else {
        full[..full.len().min(12)].to_string()
    }
}

/// Parsed harness configuration: every env knob, read once.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Quarter-length runs and a 3-point load axis.
    pub quick: bool,
    /// Worker threads for the run-level executor.
    pub threads: NonZeroUsize,
    /// Board-shard workers inside each point's cycle engine (1 = the
    /// sequential engine; DESIGN.md §12).
    pub point_threads: NonZeroUsize,
    /// Directory CSVs (and the perf report) are written to.
    pub results: PathBuf,
    /// Event-trace output path (`tracereport` only; `None` = default).
    pub trace: Option<PathBuf>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            quick: false,
            threads: runner::available_threads(),
            point_threads: NonZeroUsize::MIN,
            results: PathBuf::from("results"),
            trace: None,
        }
    }
}

impl BenchConfig {
    /// Reads `ERAPID_QUICK`, `ERAPID_THREADS`, `ERAPID_POINT_THREADS`,
    /// `ERAPID_RESULTS` and `ERAPID_TRACE`, plus the `--seq` escape hatch
    /// from the command line (forces both thread knobs to 1). Binaries
    /// call this once at the top of `main`.
    pub fn from_env() -> Self {
        let seq = std::env::args().skip(1).any(|a| a == "--seq");
        Self {
            quick: std::env::var("ERAPID_QUICK")
                .map(|v| v == "1")
                .unwrap_or(false),
            threads: if seq {
                NonZeroUsize::MIN
            } else {
                runner::threads_from_env()
            },
            point_threads: if seq {
                NonZeroUsize::MIN
            } else {
                runner::point_threads_from_env()
            },
            results: PathBuf::from(
                std::env::var("ERAPID_RESULTS").unwrap_or_else(|_| "results".into()),
            ),
            trace: std::env::var("ERAPID_TRACE")
                .ok()
                .filter(|v| !v.trim().is_empty())
                .map(PathBuf::from),
        }
    }

    /// The load axis in use (3 points in quick mode, the paper's 9
    /// otherwise).
    pub fn load_axis(&self) -> Vec<f64> {
        if self.quick {
            vec![0.1, 0.5, 0.9]
        } else {
            paper_loads()
        }
    }

    /// Results directory (created on demand).
    pub fn results_dir(&self) -> PathBuf {
        let _ = std::fs::create_dir_all(&self.results);
        self.results.clone()
    }

    /// The phase plan for a system with reconfiguration window `window`.
    pub fn plan(&self, window: desim::Cycle) -> desim::phase::PhasePlan {
        if self.quick {
            desim::phase::PhasePlan::new(window, 2 * window).with_max_cycles(10 * window)
        } else {
            default_plan(window)
        }
    }

    /// Builds the experiment point for one (mode, pattern, load) on the
    /// paper's 64-node system.
    pub fn point(&self, mode: NetworkMode, pattern: &TrafficPattern, load: f64) -> RunPoint {
        let cfg = SystemConfig::paper64(mode);
        let plan = self.plan(cfg.schedule.window);
        RunPoint {
            cfg,
            pattern: pattern.clone(),
            load,
            plan,
            source: TraceSource::Generate,
        }
    }

    /// Runs one (mode, pattern, load) point on the paper's 64-node system,
    /// board-sharded onto `point_threads` workers (1 = sequential engine).
    pub fn run_point(&self, mode: NetworkMode, pattern: &TrafficPattern, load: f64) -> RunResult {
        self.point(mode, pattern, load).run_with(self.point_threads)
    }

    /// Runs the full panel for one pattern (the 4 curves of one figure
    /// column), fanning all mode × load points over the worker pool.
    /// Results are byte-identical to the sequential order for any thread
    /// count.
    pub fn run_panel(&self, name: &str, pattern: &TrafficPattern) -> Panel {
        let loads = self.load_axis();
        let modes = NetworkMode::all();
        eprintln!(
            "  running {} ({} modes x {} loads on {} threads x {} point workers) ...",
            name,
            modes.len(),
            loads.len(),
            self.threads,
            self.point_threads
        );
        let points: Vec<RunPoint> = modes
            .iter()
            .flat_map(|&mode| loads.iter().map(move |&l| (mode, l)))
            .map(|(mode, l)| self.point(mode, pattern, l))
            .collect();
        let mut flat = runner::run_points_sharded(self.threads, self.point_threads, points);
        let mut results = Vec::new();
        for &mode in modes.iter().rev() {
            let series: Vec<RunResult> = flat.split_off(flat.len() - loads.len());
            results.push((mode, series));
        }
        results.reverse();
        Panel {
            pattern: name.to_string(),
            results,
            loads,
        }
    }
}

/// Ranks labelled survival fractions worst-first and returns the `take`
/// worst labels — the scenario/resilience bins' hostile-workload picker.
///
/// Ordering is total (`f64::total_cmp`), so a NaN fraction — which a
/// buggy metric could produce — sorts *after* every real number instead
/// of scrambling the sort, and ties keep their input order (stable sort).
/// Idle runs report fraction 1.0 (see `RunResult::delivered_fraction`)
/// and therefore rank last.
pub fn rank_worst_offenders<'a>(survival: &[(f64, &'a str)], take: usize) -> Vec<&'a str> {
    let mut ranked = survival.to_vec();
    ranked.sort_by(|a, b| a.0.total_cmp(&b.0));
    ranked.into_iter().take(take).map(|(_, n)| n).collect()
}

/// One pattern's full panel: all four configurations across the load axis.
pub struct Panel {
    /// Pattern name.
    pub pattern: String,
    /// `results[mode][load_idx]`.
    pub results: Vec<(NetworkMode, Vec<RunResult>)>,
    /// The load axis used.
    pub loads: Vec<f64>,
}

/// Sequential reference for [`BenchConfig::run_panel`] — used by tests and
/// the perf report to prove the parallel path byte-identical.
pub fn run_panel_sequential(cfg: &BenchConfig, name: &str, pattern: &TrafficPattern) -> Panel {
    let loads = cfg.load_axis();
    let mut results = Vec::new();
    for mode in NetworkMode::all() {
        let series: Vec<RunResult> = loads
            .iter()
            .map(|&l| {
                let p = cfg.point(mode, pattern, l);
                run_once(p.cfg, p.pattern, p.load, p.plan)
            })
            .collect();
        results.push((mode, series));
    }
    Panel {
        pattern: name.to_string(),
        results,
        loads,
    }
}

/// Prints the three sub-panels (throughput, latency, power) the paper's
/// Figures 5/6 show for one pattern, and writes a CSV.
pub fn print_panel(cfg: &BenchConfig, panel: &Panel) {
    let headers = |unit: &str| {
        let mut h = vec![format!("load ({unit})")];
        for (m, _) in &panel.results {
            h.push(m.name().to_string());
        }
        h
    };
    let mut thr = Table::new(headers("thr, pkt/node/cycle"))
        .with_title(format!("[{}] Accepted throughput", panel.pattern));
    let mut lat = Table::new(headers("latency, cycles"))
        .with_title(format!("[{}] Average packet latency", panel.pattern));
    let mut pwr = Table::new(headers("power, mW"))
        .with_title(format!("[{}] Optical interconnect power", panel.pattern));
    for (i, &load) in panel.loads.iter().enumerate() {
        let row = |f: &dyn Fn(&RunResult) -> String| -> Vec<String> {
            let mut r = vec![format!("{load:.1}")];
            for (_, series) in &panel.results {
                r.push(f(&series[i]));
            }
            r
        };
        thr.row(row(&|r| format!("{:.4}", r.throughput)));
        lat.row(row(&|r| format!("{:.1}", r.latency)));
        pwr.row(row(&|r| format!("{:.1}", r.power_mw)));
    }
    println!("{}", thr.render());
    println!("{}", lat.render());
    println!("{}", pwr.render());

    // CSV export.
    let mut headers = vec!["load".to_string()];
    for (m, _) in &panel.results {
        for metric in ["thr", "lat", "pwr"] {
            headers.push(format!("{}_{}", m.name(), metric));
        }
    }
    let mut csv = Csv::new(headers);
    for (i, &load) in panel.loads.iter().enumerate() {
        let mut row = vec![format!("{load}")];
        for (_, series) in &panel.results {
            let r = &series[i];
            row.push(format!("{}", r.throughput));
            row.push(format!("{}", r.latency));
            row.push(format!("{}", r.power_mw));
        }
        csv.row(row);
    }
    let path = cfg.results_dir().join(format!("{}.csv", panel.pattern));
    match csv.write_to(&path) {
        Ok(()) => println!("wrote {}\n", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Draws the panel's three metrics as terminal line charts (the actual
/// figure shapes, next to the exact tables).
pub fn print_charts(panel: &Panel) {
    use netstats::chart::Chart;
    let draw = |title: &str, ylab: &str, f: &dyn Fn(&erapid_core::experiment::RunResult) -> f64| {
        let mut c = Chart::new(format!("[{}] {title}", panel.pattern), 64, 14)
            .with_labels("offered load (fraction of N_c)", ylab);
        for (mode, series) in &panel.results {
            let pts: Vec<(f64, f64)> = panel
                .loads
                .iter()
                .zip(series)
                .map(|(&l, r)| (l, f(r)))
                .collect();
            c.series(mode.name(), pts);
        }
        println!("{}", c.render());
    };
    draw("throughput", "pkt/node/cycle", &|r| r.throughput);
    draw("latency", "cycles", &|r| r.latency);
    draw("power", "mW", &|r| r.power_mw);
}

/// Prints the paper-vs-measured summary comparisons for a panel, mirroring
/// the claims in §4.2.
pub fn print_ratios(panel: &Panel) {
    let find = |mode: NetworkMode| -> &Vec<RunResult> {
        &panel
            .results
            .iter()
            .find(|(m, _)| *m == mode)
            .expect("all modes present")
            .1
    };
    let peak = |s: &Vec<RunResult>| s.iter().map(|r| r.throughput).fold(0.0f64, f64::max);
    let peak_pwr = |s: &Vec<RunResult>| s.iter().map(|r| r.power_mw).fold(0.0f64, f64::max);
    let npnb = find(NetworkMode::NpNb);
    let npb = find(NetworkMode::NpB);
    let pnb = find(NetworkMode::PNb);
    let pb = find(NetworkMode::PB);
    println!("[{}] headline ratios:", panel.pattern);
    println!(
        "  peak throughput  NP-B/NP-NB = {:.2}x   P-B/NP-B = {:.2}x",
        peak(npb) / peak(npnb).max(1e-12),
        peak(pb) / peak(npb).max(1e-12),
    );
    println!(
        "  peak power       NP-B/NP-NB = {:.2}x   P-B/NP-B = {:.2}x   P-NB/NP-NB = {:.2}x",
        peak_pwr(npb) / peak_pwr(npnb).max(1e-12),
        peak_pwr(pb) / peak_pwr(npb).max(1e-12),
        peak_pwr(pnb) / peak_pwr(npnb).max(1e-12),
    );
    // Mid-load power saving of P-B vs NP-B (where DPM has headroom).
    let mid = panel.loads.len() / 2;
    println!(
        "  mid-load power   P-B/NP-B = {:.2}x   (load {:.1})",
        pb[mid].power_mw / npb[mid].power_mw.max(1e-12),
        panel.loads[mid]
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> BenchConfig {
        BenchConfig {
            quick: true,
            ..BenchConfig::default()
        }
    }

    #[test]
    fn worst_offenders_rank_lowest_survival_first() {
        let survival = [(0.9, "a"), (0.4, "b"), (1.0, "c"), (0.7, "d")];
        assert_eq!(rank_worst_offenders(&survival, 2), vec!["b", "d"]);
        // Asking for more than available returns everything, ranked.
        assert_eq!(rank_worst_offenders(&survival, 9), vec!["b", "d", "a", "c"]);
        assert!(rank_worst_offenders(&[], 2).is_empty());
    }

    #[test]
    fn worst_offenders_nan_ranks_last_and_idle_runs_rank_after_lossy() {
        // total_cmp: NaN sorts after +inf, so a poisoned fraction can
        // never displace a real worst offender; an idle run's 1.0 (the
        // injected == 0 guard) ranks after any lossy run.
        let survival = [(f64::NAN, "nan"), (1.0, "idle"), (0.2, "lossy")];
        assert_eq!(
            rank_worst_offenders(&survival, 3),
            vec!["lossy", "idle", "nan"]
        );
        // Ties keep input order (stable sort).
        let tied = [(0.5, "first"), (0.5, "second")];
        assert_eq!(rank_worst_offenders(&tied, 2), vec!["first", "second"]);
    }

    #[test]
    fn load_axis_default_is_paper() {
        // No env mutation: configurations are plain values now.
        assert_eq!(BenchConfig::default().load_axis().len(), 9);
        assert_eq!(quick_cfg().load_axis().len(), 3);
    }

    #[test]
    fn run_point_smoke() {
        let r = quick_cfg().run_point(NetworkMode::NpNb, &TrafficPattern::Uniform, 0.2);
        assert!(r.throughput > 0.0);
    }

    #[test]
    fn sharded_panel_matches_sequential() {
        // Run-level pool *and* per-point board sharding at once: the
        // nested 2x2 budget must still be byte-identical to the plain
        // sequential loop.
        let cfg = BenchConfig {
            quick: true,
            threads: NonZeroUsize::new(2).unwrap(),
            point_threads: NonZeroUsize::new(2).unwrap(),
            ..BenchConfig::default()
        };
        let par = cfg.run_panel("uniform", &TrafficPattern::Uniform);
        let seq = run_panel_sequential(&cfg, "uniform", &TrafficPattern::Uniform);
        assert_eq!(par.loads, seq.loads);
        for ((ma, sa), (mb, sb)) in par.results.iter().zip(&seq.results) {
            assert_eq!(ma, mb);
            assert_eq!(sa, sb, "mode {} series diverged", ma.name());
        }
    }

    #[test]
    fn parallel_panel_matches_sequential() {
        // 2 threads vs the plain sequential loop over the same points:
        // every RunResult field must be identical, in identical order.
        let cfg = BenchConfig {
            quick: true,
            threads: NonZeroUsize::new(2).unwrap(),
            ..BenchConfig::default()
        };
        let par = cfg.run_panel("uniform", &TrafficPattern::Uniform);
        let seq = run_panel_sequential(&cfg, "uniform", &TrafficPattern::Uniform);
        assert_eq!(par.loads, seq.loads);
        assert_eq!(par.results.len(), seq.results.len());
        for ((ma, sa), (mb, sb)) in par.results.iter().zip(&seq.results) {
            assert_eq!(ma, mb);
            assert_eq!(sa, sb, "mode {} series diverged", ma.name());
        }
    }
}
