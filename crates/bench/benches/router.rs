//! Criterion bench: sustained flit throughput of one IBI router.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use router::flit::{NodeId, PacketId};
use router::packet::Packet;
use router::routing::{PortId, TableRoute};
use router::{Router, RouterConfig};
use std::hint::black_box;

fn make_router(ports: u16) -> Router {
    let table = (0..ports).map(PortId).collect();
    Router::new(
        RouterConfig {
            in_ports: ports,
            out_ports: ports,
            vcs: 4,
            buf_depth: 4,
            downstream_depth: 64,
        },
        Box::new(TableRoute::new(table)),
    )
}

/// Drives `cycles` cycles of all-to-adjacent traffic through the router,
/// returning credits immediately.
fn drive(router: &mut Router, cycles: u64, ports: u16) {
    let mut id = 0u64;
    for now in 0..cycles {
        for p in 0..ports {
            if router.can_accept(PortId(p), (now % 4) as u8)
                && router.input_space(PortId(p), (now % 4) as u8) == 4
            {
                let pkt = Packet {
                    id: PacketId(id),
                    src: NodeId(p as u32),
                    dst: NodeId(((p + 1) % ports) as u32),
                    flits: 8,
                    injected_at: now,
                    labelled: false,
                };
                id += 1;
                for f in pkt.flitize().into_iter().take(4) {
                    router.inject(PortId(p), (now % 4) as u8, f);
                }
            }
        }
        for t in router.step(now) {
            router.credit(t.out_port, t.out_vc);
            black_box(t.flit.seq);
        }
    }
}

fn bench_router(c: &mut Criterion) {
    let mut g = c.benchmark_group("router_step");
    for &ports in &[8u16, 16] {
        g.bench_function(format!("{ports}x{ports}_1kcycles"), |b| {
            b.iter_batched(
                || make_router(ports),
                |mut r| {
                    drive(&mut r, 1000, ports);
                    black_box(r.stats().traversed)
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_router
}
criterion_main!(benches);
