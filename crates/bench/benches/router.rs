//! Timing bench: sustained flit throughput of one IBI router. Plain
//! `std::time` harness — see `erapid_bench::timing`.

use erapid_bench::timing::bench;
use router::flit::{NodeId, PacketId};
use router::packet::Packet;
use router::routing::{PortId, TableRoute};
use router::{Router, RouterConfig};
use std::hint::black_box;

fn make_router(ports: u16) -> Router {
    let table = (0..ports).map(PortId).collect();
    Router::new(
        RouterConfig {
            in_ports: ports,
            out_ports: ports,
            vcs: 4,
            buf_depth: 4,
            downstream_depth: 64,
        },
        Box::new(TableRoute::new(table)),
    )
}

/// Drives `cycles` cycles of all-to-adjacent traffic through the router,
/// returning credits immediately.
fn drive(router: &mut Router, cycles: u64, ports: u16) {
    let mut id = 0u64;
    for now in 0..cycles {
        for p in 0..ports {
            if router.can_accept(PortId(p), (now % 4) as u8)
                && router.input_space(PortId(p), (now % 4) as u8) == 4
            {
                let pkt = Packet {
                    id: PacketId(id),
                    src: NodeId(p as u32),
                    dst: NodeId(((p + 1) % ports) as u32),
                    flits: 8,
                    injected_at: now,
                    labelled: false,
                };
                id += 1;
                for f in pkt.flitize().into_iter().take(4) {
                    router.inject(PortId(p), (now % 4) as u8, f);
                }
            }
        }
        for t in router.step(now) {
            router.credit(t.out_port, t.out_vc);
            black_box(t.flit.seq);
        }
    }
}

fn main() {
    for &ports in &[8u16, 16] {
        bench(
            &format!("router_step/{ports}x{ports}_1kcycles"),
            15,
            || make_router(ports),
            |mut r| {
                drive(&mut r, 1000, ports);
                r.stats().traversed
            },
        );
    }
}
