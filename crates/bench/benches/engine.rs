//! Criterion benches for the DES engine: pending-event-set implementations
//! and the RNG streams.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use desim::queue::{BinaryHeapQueue, CalendarQueue, EventQueue};
use desim::rng::Pcg32;
use std::hint::black_box;

/// Classic hold model: steady-state queue churn at a fixed population.
fn hold<Q: EventQueue<u64>>(q: &mut Q, ops: u64) {
    let mut rng = Pcg32::stream(1, 1);
    let mut now = 0u64;
    for i in 0..ops {
        let (t, _) = q.pop().expect("population stays positive");
        now = now.max(t);
        q.insert(now + 1 + rng.below(64) as u64, i);
    }
}

fn bench_queues(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue_hold");
    for &population in &[64usize, 1024] {
        g.bench_function(format!("binary_heap/{population}"), |b| {
            b.iter_batched(
                || {
                    let mut q = BinaryHeapQueue::new();
                    for i in 0..population {
                        q.insert(i as u64, i as u64);
                    }
                    q
                },
                |mut q| hold(&mut q, 10_000),
                BatchSize::SmallInput,
            )
        });
        g.bench_function(format!("calendar/{population}"), |b| {
            b.iter_batched(
                || {
                    let mut q = CalendarQueue::new(256, 4);
                    for i in 0..population {
                        q.insert(i as u64, i as u64);
                    }
                    q
                },
                |mut q| hold(&mut q, 10_000),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("pcg32_below", |b| {
        let mut rng = Pcg32::stream(7, 7);
        b.iter(|| black_box(rng.below(black_box(63))))
    });
    c.bench_function("pcg32_bernoulli", |b| {
        let mut rng = Pcg32::stream(7, 8);
        b.iter(|| black_box(rng.bernoulli(black_box(0.02))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_queues, bench_rng
}
criterion_main!(benches);
