//! Timing benches for the DES engine: pending-event-set implementations
//! and the RNG streams. Plain `std::time` harness — see
//! `erapid_bench::timing` (the workspace builds offline, so no external
//! bench framework).

use desim::queue::{BinaryHeapQueue, CalendarQueue, EventQueue};
use desim::rng::Pcg32;
use erapid_bench::timing::bench;
use std::hint::black_box;

/// Classic hold model: steady-state queue churn at a fixed population.
fn hold<Q: EventQueue<u64>>(q: &mut Q, ops: u64) {
    let mut rng = Pcg32::stream(1, 1);
    let mut now = 0u64;
    for i in 0..ops {
        let (t, _) = q.pop().expect("population stays positive");
        now = now.max(t);
        q.insert(now + 1 + rng.below(64) as u64, i);
    }
}

fn bench_queues() {
    for &population in &[64usize, 1024] {
        bench(
            &format!("event_queue_hold/binary_heap/{population}"),
            20,
            || {
                let mut q = BinaryHeapQueue::new();
                for i in 0..population {
                    q.insert(i as u64, i as u64);
                }
                q
            },
            |mut q| {
                hold(&mut q, 10_000);
                q.len()
            },
        );
        bench(
            &format!("event_queue_hold/calendar/{population}"),
            20,
            || {
                let mut q = CalendarQueue::new(256, 4);
                for i in 0..population {
                    q.insert(i as u64, i as u64);
                }
                q
            },
            |mut q| {
                hold(&mut q, 10_000);
                q.len()
            },
        );
    }
}

fn bench_rng() {
    bench(
        "pcg32_below/1M",
        20,
        || Pcg32::stream(7, 7),
        |mut rng| {
            let mut acc = 0u64;
            for _ in 0..1_000_000 {
                acc = acc.wrapping_add(rng.below(black_box(63)) as u64);
            }
            acc
        },
    );
    bench(
        "pcg32_bernoulli/1M",
        20,
        || Pcg32::stream(7, 8),
        |mut rng| {
            let mut acc = 0u64;
            for _ in 0..1_000_000 {
                acc += rng.bernoulli(black_box(0.02)) as u64;
            }
            acc
        },
    );
}

fn main() {
    bench_queues();
    bench_rng();
}
