//! Timing bench wrapping one representative load point of each figure
//! panel, so the bench suite exercises the same code paths the figure
//! binaries run without the full sweep cost. Plain `std::time` harness —
//! see `erapid_bench::timing`.

use desim::phase::PhasePlan;
use erapid_bench::timing::bench;
use erapid_core::config::{NetworkMode, SystemConfig};
use erapid_core::experiment::run_once;
use traffic::pattern::TrafficPattern;

fn quick_plan(window: u64) -> PhasePlan {
    PhasePlan::new(window, 2 * window).with_max_cycles(8 * window)
}

fn main() {
    for (name, pattern) in TrafficPattern::paper_suite() {
        for mode in [NetworkMode::NpNb, NetworkMode::PB] {
            bench(
                &format!("figure_points/{name}/{}/load0.5", mode.name()),
                10,
                || (),
                |()| {
                    let cfg = SystemConfig::paper64(mode);
                    let plan = quick_plan(cfg.schedule.window);
                    run_once(cfg, pattern.clone(), 0.5, plan)
                },
            );
        }
    }
}
