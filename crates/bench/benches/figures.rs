//! Criterion bench wrapping one representative load point of each figure
//! panel, so `cargo bench` exercises the same code paths the figure
//! binaries run (with statistical timing) without the full sweep cost.

use criterion::{criterion_group, criterion_main, Criterion};
use desim::phase::PhasePlan;
use erapid_core::config::{NetworkMode, SystemConfig};
use erapid_core::experiment::run_once;
use std::hint::black_box;
use traffic::pattern::TrafficPattern;

fn quick_plan(window: u64) -> PhasePlan {
    PhasePlan::new(window, 2 * window).with_max_cycles(8 * window)
}

fn bench_panels(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure_points");
    g.sample_size(10);
    for (name, pattern) in TrafficPattern::paper_suite() {
        for mode in [NetworkMode::NpNb, NetworkMode::PB] {
            g.bench_function(format!("{name}/{}/load0.5", mode.name()), |b| {
                b.iter(|| {
                    let cfg = SystemConfig::paper64(mode);
                    let plan = quick_plan(cfg.schedule.window);
                    black_box(run_once(cfg, pattern.clone(), 0.5, plan))
                })
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_panels
}
criterion_main!(benches);
