//! Criterion bench: full 64-node E-RAPID system simulation rate
//! (cycles/second of simulated time), per network mode.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use desim::phase::PhasePlan;
use erapid_core::config::{NetworkMode, SystemConfig};
use erapid_core::system::System;
use std::hint::black_box;
use traffic::pattern::TrafficPattern;

fn bench_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("system_64node_2kcycles");
    for mode in NetworkMode::all() {
        g.bench_function(mode.name(), |b| {
            b.iter_batched(
                || {
                    System::new(
                        SystemConfig::paper64(mode),
                        TrafficPattern::Uniform,
                        0.5,
                        PhasePlan::new(1000, 1000),
                    )
                },
                |mut sys| {
                    for _ in 0..2000 {
                        sys.step();
                    }
                    black_box(sys.metrics().injected_total)
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_construction(c: &mut Criterion) {
    c.bench_function("system_construction_64node", |b| {
        b.iter(|| {
            black_box(System::new(
                SystemConfig::paper64(NetworkMode::PB),
                TrafficPattern::Uniform,
                0.5,
                PhasePlan::new(1000, 1000),
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_system, bench_construction
}
criterion_main!(benches);
