//! Timing bench: full 64-node E-RAPID system simulation rate
//! (cycles/second of simulated time), per network mode. Plain `std::time`
//! harness — see `erapid_bench::timing`.

use desim::phase::PhasePlan;
use erapid_bench::timing::bench;
use erapid_core::config::{NetworkMode, SystemConfig};
use erapid_core::system::System;
use std::hint::black_box;
use traffic::pattern::TrafficPattern;

fn main() {
    for mode in NetworkMode::all() {
        let t = bench(
            &format!("system_64node_2kcycles/{}", mode.name()),
            10,
            || {
                System::new(
                    SystemConfig::paper64(mode),
                    TrafficPattern::Uniform,
                    0.5,
                    PhasePlan::new(1000, 1000),
                )
            },
            |mut sys| {
                for _ in 0..2000 {
                    sys.step();
                }
                sys.metrics().injected_total
            },
        );
        println!(
            "    -> {:.0} sim cycles/sec",
            2000.0 / t.median_secs().max(1e-12)
        );
    }
    bench(
        "system_construction_64node",
        10,
        || (),
        |()| {
            black_box(System::new(
                SystemConfig::paper64(NetworkMode::PB),
                TrafficPattern::Uniform,
                0.5,
                PhasePlan::new(1000, 1000),
            ))
        },
    );
}
