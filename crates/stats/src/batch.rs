//! Batch-means confidence intervals for steady-state simulation outputs.
//!
//! Single long-run simulations produce autocorrelated samples; the classic
//! remedy is the method of batch means: split the measurement interval into
//! `k` contiguous batches, treat per-batch means as (approximately)
//! independent, and compute a Student-t confidence interval over them.

use crate::running::Running;

/// Accumulates samples into fixed-size batches and reports a CI over batch
/// means.
#[derive(Debug, Clone)]
pub struct BatchMeans {
    batch_size: u64,
    current: Running,
    batch_means: Vec<f64>,
}

impl BatchMeans {
    /// Creates an accumulator with the given batch size (samples per batch).
    ///
    /// # Panics
    /// If `batch_size == 0`.
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0);
        Self {
            batch_size,
            current: Running::new(),
            batch_means: Vec::new(),
        }
    }

    /// Adds a sample; closes a batch when it fills.
    pub fn push(&mut self, x: f64) {
        self.current.push(x);
        if self.current.count() == self.batch_size {
            self.batch_means.push(self.current.mean());
            self.current.clear();
        }
    }

    /// Number of completed batches.
    pub fn batches(&self) -> usize {
        self.batch_means.len()
    }

    /// Grand mean over completed batches (0 if none).
    pub fn mean(&self) -> f64 {
        if self.batch_means.is_empty() {
            return 0.0;
        }
        self.batch_means.iter().sum::<f64>() / self.batch_means.len() as f64
    }

    /// Half-width of the ~95% confidence interval over batch means.
    /// Returns `None` with fewer than 2 batches.
    pub fn ci_half_width(&self) -> Option<f64> {
        let k = self.batch_means.len();
        if k < 2 {
            return None;
        }
        let mut r = Running::new();
        for &m in &self.batch_means {
            r.push(m);
        }
        let se = (r.sample_variance() / k as f64).sqrt();
        Some(t_critical_95(k - 1) * se)
    }

    /// `(mean, half_width)` if at least two batches completed.
    pub fn interval(&self) -> Option<(f64, f64)> {
        self.ci_half_width().map(|hw| (self.mean(), hw))
    }

    /// Relative CI half-width (half_width / |mean|); `None` when undefined.
    pub fn relative_precision(&self) -> Option<f64> {
        let (m, hw) = self.interval()?;
        if m.abs() < f64::EPSILON {
            return None;
        }
        Some(hw / m.abs())
    }
}

/// Two-sided 95% Student-t critical values; exact for small df, asymptotic
/// 1.96 beyond the table.
fn t_critical_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::INFINITY
    } else if df <= TABLE.len() {
        TABLE[df - 1]
    } else {
        1.96
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_close_at_size() {
        let mut b = BatchMeans::new(4);
        for i in 0..10 {
            b.push(i as f64);
        }
        // 10 samples -> 2 complete batches of 4, 2 left over.
        assert_eq!(b.batches(), 2);
        // Batch means: (0+1+2+3)/4 = 1.5 and (4+5+6+7)/4 = 5.5.
        assert!((b.mean() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn ci_requires_two_batches() {
        let mut b = BatchMeans::new(4);
        for i in 0..4 {
            b.push(i as f64);
        }
        assert!(b.ci_half_width().is_none());
        for i in 0..4 {
            b.push(i as f64);
        }
        assert!(b.ci_half_width().is_some());
    }

    #[test]
    fn identical_batches_have_zero_width() {
        let mut b = BatchMeans::new(2);
        for _ in 0..10 {
            b.push(7.0);
        }
        let (m, hw) = b.interval().unwrap();
        assert!((m - 7.0).abs() < 1e-12);
        assert!(hw.abs() < 1e-12);
    }

    #[test]
    fn ci_shrinks_with_more_batches() {
        // Deterministic pseudo-noise around 10.
        let noise = |i: u64| ((i.wrapping_mul(2654435761) >> 16) % 1000) as f64 / 1000.0 - 0.5;
        let mut few = BatchMeans::new(10);
        let mut many = BatchMeans::new(10);
        for i in 0..50 {
            few.push(10.0 + noise(i));
        }
        for i in 0..5000 {
            many.push(10.0 + noise(i));
        }
        let hw_few = few.ci_half_width().unwrap();
        let hw_many = many.ci_half_width().unwrap();
        assert!(hw_many < hw_few, "{hw_many} !< {hw_few}");
        assert!(many.relative_precision().unwrap() < 0.01);
    }

    #[test]
    fn t_table_spot_checks() {
        assert!((t_critical_95(1) - 12.706).abs() < 1e-9);
        assert!((t_critical_95(10) - 2.228).abs() < 1e-9);
        assert!((t_critical_95(1000) - 1.96).abs() < 1e-9);
        assert!(t_critical_95(0).is_infinite());
    }
}
