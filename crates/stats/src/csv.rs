//! Minimal CSV writer (no external dependency) for exporting figure data.
//!
//! The bench binaries can dump the exact series they print as CSV so the
//! figures can be re-plotted with any external tool.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// An in-memory CSV document.
#[derive(Debug, Clone, Default)]
pub struct Csv {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Csv {
    /// Creates a CSV with the given header row.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of cells.
    ///
    /// # Panics
    /// If the cell count differs from the header count.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
        self
    }

    /// Appends a row of floats with full precision.
    pub fn row_f64(&mut self, cells: &[f64]) -> &mut Self {
        self.row(cells.iter().map(|x| format!("{x}")).collect::<Vec<_>>())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows exist.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders RFC-4180-style CSV (quoting cells that need it).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if cell.contains([',', '"', '\n']) {
                    let escaped = cell.replace('"', "\"\"");
                    let _ = write!(out, "\"{escaped}\"");
                } else {
                    out.push_str(cell);
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Writes the CSV to a file path.
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = File::create(path)?;
        f.write_all(self.render().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rows() {
        let mut c = Csv::new(vec!["load", "throughput"]);
        c.row(vec!["0.1", "0.099"]);
        c.row_f64(&[0.2, 0.197]);
        let s = c.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "load,throughput");
        assert_eq!(lines[1], "0.1,0.099");
        assert_eq!(lines[2], "0.2,0.197");
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn quotes_when_needed() {
        let mut c = Csv::new(vec!["name", "note"]);
        c.row(vec!["a,b", "say \"hi\""]);
        let s = c.render();
        assert!(s.contains("\"a,b\""));
        assert!(s.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic]
    fn mismatched_width_panics() {
        let mut c = Csv::new(vec!["a", "b"]);
        c.row(vec!["1"]);
    }

    #[test]
    fn writes_to_file() {
        let path = std::env::temp_dir().join("netstats_csv_test.csv");
        let mut c = Csv::new(vec!["x"]);
        c.row(vec!["1"]);
        c.write_to(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "x\n1\n");
        let _ = std::fs::remove_file(&path);
    }
}
