//! Fixed-width-bin histograms with percentile queries.
//!
//! Latency distributions in the reproduction are heavy-tailed near
//! saturation, so mean latency alone hides congestion; the figure binaries
//! also report p50/p95/p99 from these histograms.

/// Histogram over `[0, bin_width * bins)` with an explicit overflow bucket.
#[derive(Debug, Clone)]
pub struct Histogram {
    bin_width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram of `bins` bins, each `bin_width` wide.
    ///
    /// # Panics
    /// If `bins == 0` or `bin_width <= 0`.
    pub fn new(bins: usize, bin_width: f64) -> Self {
        assert!(bins > 0 && bin_width > 0.0);
        Self {
            bin_width,
            counts: vec![0; bins],
            overflow: 0,
            total: 0,
            sum: 0.0,
        }
    }

    /// Records a sample (negative samples clamp into the first bin).
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        self.sum += x;
        let idx = (x.max(0.0) / self.bin_width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Samples that fell past the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Mean of the recorded samples (exact, not binned).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`, resolved to bin upper edges.
    /// Returns `None` when empty. Overflowed mass resolves to `+inf`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some((i as f64 + 1.0) * self.bin_width);
            }
        }
        Some(f64::INFINITY)
    }

    /// Median (p50).
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Iterates `(bin_lower_edge, count)` for the non-overflow bins.
    pub fn bins(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (i as f64 * self.bin_width, c))
    }

    /// Merges a histogram with identical geometry.
    ///
    /// # Panics
    /// If bin counts or widths differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.counts.len(), other.counts.len());
        assert!((self.bin_width - other.bin_width).abs() < f64::EPSILON);
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
        self.sum += other.sum;
    }

    /// Resets all counts.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.overflow = 0;
        self.total = 0;
        self.sum = 0.0;
    }
}

use desim::snap::Snap;

impl Snap for Histogram {
    fn save(&self, w: &mut desim::snap::SnapWriter) {
        w.f64(self.bin_width);
        self.counts.save(w);
        w.u64(self.overflow);
        w.u64(self.total);
        w.f64(self.sum);
    }
    fn load(r: &mut desim::snap::SnapReader<'_>) -> Result<Self, desim::snap::SnapError> {
        let bin_width = r.f64()?;
        let counts = Vec::<u64>::load(r)?;
        if bin_width.is_nan() || bin_width <= 0.0 || counts.is_empty() {
            return Err(desim::snap::SnapError::Format(
                "histogram geometry invalid".to_string(),
            ));
        }
        Ok(Self {
            bin_width,
            counts,
            overflow: r.u64()?,
            total: r.u64()?,
            sum: r.f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(4, 10.0);
        h.record(0.0);
        h.record(9.9);
        h.record(10.0);
        h.record(35.0);
        h.record(40.0); // overflow
        let bins: Vec<u64> = h.bins().map(|(_, c)| c).collect();
        assert_eq!(bins, vec![2, 1, 0, 1]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new(10, 1.0);
        for x in [1.0, 2.0, 3.0] {
            h.record(x);
        }
        assert!((h.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::new(100, 1.0);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        assert!((h.p50().unwrap() - 50.0).abs() <= 1.0);
        assert!((h.p95().unwrap() - 95.0).abs() <= 1.0);
        assert!((h.p99().unwrap() - 99.0).abs() <= 1.0);
        assert_eq!(h.quantile(0.0).unwrap(), 1.0);
        assert_eq!(h.quantile(1.0).unwrap(), 100.0);
    }

    #[test]
    fn quantile_of_empty_is_none() {
        let h = Histogram::new(4, 1.0);
        assert!(h.p50().is_none());
    }

    #[test]
    fn overflow_quantile_is_infinite() {
        let mut h = Histogram::new(2, 1.0);
        h.record(100.0);
        assert_eq!(h.p50(), Some(f64::INFINITY));
    }

    #[test]
    fn negative_samples_clamp() {
        let mut h = Histogram::new(2, 1.0);
        h.record(-5.0);
        let bins: Vec<u64> = h.bins().map(|(_, c)| c).collect();
        assert_eq!(bins[0], 1);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(4, 1.0);
        let mut b = Histogram::new(4, 1.0);
        a.record(0.5);
        b.record(0.5);
        b.record(3.5);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        let bins: Vec<u64> = a.bins().map(|(_, c)| c).collect();
        assert_eq!(bins, vec![2, 0, 0, 1]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut h = Histogram::new(4, 1.0);
        h.record(1.0);
        h.record(100.0);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
