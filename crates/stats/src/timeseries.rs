//! Decimated time series for regenerating the paper's figures.
//!
//! Figure 3 of the paper plots power level and link utilization against
//! time; [`TimeSeries`] records `(cycle, value)` points with optional
//! decimation so long runs stay small.

use desim::Cycle;

/// An append-only `(time, value)` series with stride-based decimation.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    name: String,
    points: Vec<(Cycle, f64)>,
    /// Keep one point every `stride` submissions (1 = keep all).
    stride: u64,
    submitted: u64,
}

impl TimeSeries {
    /// Creates a series that keeps every submitted point.
    pub fn new(name: impl Into<String>) -> Self {
        Self::with_stride(name, 1)
    }

    /// Creates a series that keeps every `stride`-th point.
    pub fn with_stride(name: impl Into<String>, stride: u64) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
            stride: stride.max(1),
            submitted: 0,
        }
    }

    /// Series name (used as CSV column header).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Submits a point; it is retained if it falls on the stride.
    pub fn push(&mut self, time: Cycle, value: f64) {
        if self.submitted.is_multiple_of(self.stride) {
            self.points.push((time, value));
        }
        self.submitted += 1;
    }

    /// Retained points, in submission order.
    pub fn points(&self) -> &[(Cycle, f64)] {
        &self.points
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points are retained.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total points submitted (before decimation).
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Mean of the retained values.
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|(_, v)| v).sum::<f64>() / self.points.len() as f64
    }

    /// Last retained point.
    pub fn last(&self) -> Option<(Cycle, f64)> {
        self.points.last().copied()
    }

    /// Downsamples in place to at most `max_points` by uniform thinning.
    pub fn thin_to(&mut self, max_points: usize) {
        if max_points == 0 || self.points.len() <= max_points {
            return;
        }
        let keep_every = self.points.len().div_ceil(max_points);
        let mut kept = Vec::with_capacity(max_points);
        for (i, p) in self.points.iter().enumerate() {
            if i % keep_every == 0 {
                kept.push(*p);
            }
        }
        self.points = kept;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_all_with_stride_one() {
        let mut s = TimeSeries::new("util");
        for t in 0..10 {
            s.push(t, t as f64);
        }
        assert_eq!(s.len(), 10);
        assert_eq!(s.submitted(), 10);
        assert_eq!(s.name(), "util");
        assert_eq!(s.last(), Some((9, 9.0)));
    }

    #[test]
    fn stride_decimates() {
        let mut s = TimeSeries::with_stride("p", 3);
        for t in 0..9 {
            s.push(t, 1.0);
        }
        assert_eq!(s.len(), 3);
        let times: Vec<Cycle> = s.points().iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![0, 3, 6]);
    }

    #[test]
    fn mean_of_retained() {
        let mut s = TimeSeries::new("m");
        s.push(0, 1.0);
        s.push(1, 3.0);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert!(!s.is_empty());
    }

    #[test]
    fn thin_to_bounds_size() {
        let mut s = TimeSeries::new("t");
        for t in 0..1000 {
            s.push(t, t as f64);
        }
        s.thin_to(100);
        assert!(s.len() <= 100);
        assert_eq!(s.points()[0].0, 0);
    }

    #[test]
    fn thin_to_zero_or_larger_is_noop() {
        let mut s = TimeSeries::new("t");
        for t in 0..5 {
            s.push(t, 0.0);
        }
        s.thin_to(0);
        assert_eq!(s.len(), 5);
        s.thin_to(10);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn empty_series() {
        let s = TimeSeries::new("e");
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.last(), None);
    }
}
