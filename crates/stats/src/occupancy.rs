//! Event-driven buffer-occupancy counter, bit-compatible with the eager
//! per-cycle [`crate::WindowedUtilization`] sampling it replaces.
//!
//! The eager counter recorded `flits_held / capacity` every cycle and
//! averaged at the window roll. That is an O(B) loop per board per cycle
//! even when nothing moves. This counter instead integrates *flit-cycles*:
//! the level only changes on enqueue/dequeue, so between events the
//! integral advances by `flits × Δt` in O(1), and a fully idle queue costs
//! nothing at all until the roll.
//!
//! # Exactness
//!
//! Bit-identity with the eager average holds because `capacity` is a
//! power of two (asserted in [`OccupancyIntegral::new`]): every per-cycle
//! sample `k/capacity` is a dyadic rational, every partial sum the eager
//! accumulator formed is exactly representable in an f64 significand
//! (`Σk ≤ capacity × window ≪ 2^53`), so the eager sum equals
//! `(Σk)/capacity` *exactly* — which is what [`roll`](OccupancyIntegral::roll)
//! computes from the integer flit-cycle count. The final division by the
//! window and the clamp are then the same operation on the same bits.
//!
//! # Sample timing contract
//!
//! The eager loop sampled each queue once per cycle `t`, *after* the
//! cycle's enqueues and *before* its dequeues. The event API mirrors that:
//!
//! * [`enqueue`](OccupancyIntegral::enqueue)`(t, n)` — counted from the
//!   sample at `t` onward.
//! * [`dequeue`](OccupancyIntegral::dequeue)`(t, n)` — still counted at
//!   the sample at `t`, gone from `t + 1`.
//! * [`roll`](OccupancyIntegral::roll)`(t)` — closes the window of
//!   samples `[t - window, t)`.

use desim::Cycle;

/// Integer flit-cycle integral over one reconfiguration window.
#[derive(Debug, Clone)]
pub struct OccupancyIntegral {
    window: Cycle,
    capacity: u32,
    /// Current queue level, flits.
    flits: u32,
    /// Flit-cycles accumulated in the current window up to `cursor`.
    acc: u64,
    /// Samples up to (excluding) this cycle are folded into `acc`.
    cursor: Cycle,
    /// Average of the last completed window, eager-identical.
    previous: f64,
    /// Completed windows.
    completed: u64,
    /// Any enqueue/dequeue since the last roll.
    touched: bool,
    /// Latched at roll: `touched` during that window.
    last_touched: bool,
    /// Latched at roll: the window was one flat level, so an untouched
    /// next window is guaranteed to reproduce `previous` bit-for-bit.
    last_steady: bool,
}

impl OccupancyIntegral {
    /// A counter for a queue of `capacity` flits, averaged over `window`.
    ///
    /// # Panics
    /// If `capacity` is not a power of two (the exactness argument above
    /// needs dyadic samples) or `window` is zero.
    pub fn new(window: Cycle, capacity: u32) -> Self {
        assert!(window > 0, "zero-cycle utilization window");
        assert!(
            capacity.is_power_of_two(),
            "occupancy exactness needs a power-of-two capacity, got {capacity}"
        );
        OccupancyIntegral {
            window,
            capacity,
            flits: 0,
            acc: 0,
            cursor: 0,
            previous: 0.0,
            completed: 0,
            touched: false,
            last_touched: false,
            last_steady: true,
        }
    }

    /// Folds the constant level over `[cursor, now)` into the integral.
    fn settle_to(&mut self, now: Cycle) {
        debug_assert!(now >= self.cursor, "occupancy event out of order");
        if self.flits > 0 {
            self.acc += self.flits as u64 * (now - self.cursor);
        }
        self.cursor = now;
    }

    /// `n` flits enqueued at cycle `now`; visible to the sample at `now`.
    pub fn enqueue(&mut self, now: Cycle, n: u32) {
        self.settle_to(now);
        self.flits += n;
        self.touched = true;
    }

    /// `n` flits dequeued at cycle `now`; still visible to the sample at
    /// `now` (the eager loop sampled before departures).
    pub fn dequeue(&mut self, now: Cycle, n: u32) {
        self.settle_to(now + 1);
        debug_assert!(self.flits >= n, "dequeue below empty");
        self.flits -= n;
        self.touched = true;
    }

    /// Closes the window ending at `now` (exclusive): computes the
    /// eager-identical average, resets the integral, latches the
    /// touched/steady flags the dirty-set scan reads.
    pub fn roll(&mut self, now: Cycle) -> f64 {
        self.settle_to(now);
        self.last_steady = self.acc == self.flits as u64 * self.window;
        self.last_touched = self.touched;
        self.touched = false;
        // `acc/capacity` and the eager f64 sum are the same exact value;
        // see the module docs for why the division order cannot differ.
        let avg = (self.acc as f64 / self.capacity as f64) / self.window as f64;
        self.previous = avg.clamp(0.0, 1.0);
        self.acc = 0;
        self.completed += 1;
        self.previous
    }

    /// Average occupancy of the last completed window.
    pub fn previous(&self) -> f64 {
        self.previous
    }

    /// Current queue level, flits.
    pub fn flits(&self) -> u32 {
        self.flits
    }

    /// Completed windows.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Whether any enqueue/dequeue landed in the last completed window.
    pub fn last_touched(&self) -> bool {
        self.last_touched
    }

    /// Whether the last completed window sat at one flat level, i.e. the
    /// next roll is guaranteed to reproduce [`previous`](Self::previous)
    /// bit-for-bit if nothing touches the queue. The threshold-watch
    /// dirty-set uses this to park flows: a parked flow's watch would be
    /// fed the identical value again, which `ThresholdWatch::observe`
    /// treats as a no-op, so skipping the feed is state-identical.
    pub fn last_steady(&self) -> bool {
        self.last_steady
    }
}

impl desim::snap::Snap for OccupancyIntegral {
    fn save(&self, w: &mut desim::snap::SnapWriter) {
        w.u64(self.window);
        w.u32(self.capacity);
        w.u32(self.flits);
        w.u64(self.acc);
        w.u64(self.cursor);
        w.f64(self.previous);
        w.u64(self.completed);
        w.bool(self.touched);
        w.bool(self.last_touched);
        w.bool(self.last_steady);
    }
    fn load(r: &mut desim::snap::SnapReader<'_>) -> Result<Self, desim::snap::SnapError> {
        let window = r.u64()?;
        let capacity = r.u32()?;
        if window == 0 || !capacity.is_power_of_two() {
            return Err(desim::snap::SnapError::Format(
                "occupancy integral geometry invalid".to_string(),
            ));
        }
        Ok(Self {
            window,
            capacity,
            flits: r.u32()?,
            acc: r.u64()?,
            cursor: r.u64()?,
            previous: r.f64()?,
            completed: r.u64()?,
            touched: r.bool()?,
            last_touched: r.bool()?,
            last_steady: r.bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WindowedUtilization;

    /// Drives both counters through the same random enqueue/dequeue
    /// schedule and checks bit-identical window averages.
    #[test]
    fn matches_eager_sampling_bit_for_bit() {
        let window = 50;
        let cap = 64u32;
        let mut lazy = OccupancyIntegral::new(window, cap);
        let mut eager = WindowedUtilization::new(window);
        let mut level = 0u32;
        // Deterministic LCG schedule.
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for t in 0..window * 20 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let enq = ((x >> 33) % 4) as u32;
            let enq = enq.min(cap - level);
            if enq > 0 {
                level += enq;
                lazy.enqueue(t, enq);
            }
            // Sample point: eager sees post-enqueue, pre-dequeue.
            eager.record(level as f64 / cap as f64);
            let deq = ((x >> 17) % 3) as u32;
            let deq = deq.min(level);
            if deq > 0 {
                level -= deq;
                lazy.dequeue(t, deq);
            }
            if (t + 1) % window == 0 {
                let e = eager.roll();
                let l = lazy.roll(t + 1);
                assert_eq!(l.to_bits(), e.to_bits(), "window ending at {}", t + 1);
            }
        }
    }

    #[test]
    fn idle_queue_is_steady_and_free() {
        let mut c = OccupancyIntegral::new(100, 64);
        assert_eq!(c.roll(100), 0.0);
        assert!(c.last_steady());
        assert!(!c.last_touched());
        c.enqueue(150, 8);
        assert_eq!(c.flits(), 8);
        let v = c.roll(200);
        assert!(c.last_touched());
        assert!(!c.last_steady(), "level changed mid-window");
        assert!((v - 8.0 / 64.0 * 0.5).abs() < 1e-12);
        // Untouched full window at a flat level: steady again.
        let v2 = c.roll(300);
        assert_eq!(v2, 8.0 / 64.0);
        assert!(c.last_steady());
        assert!(!c.last_touched());
    }

    #[test]
    fn dequeue_counts_at_its_own_cycle() {
        // Enqueue at 0, dequeue at 0: the cycle-0 sample still sees the
        // flit (eager sampled between the two), so one flit-cycle lands.
        let mut c = OccupancyIntegral::new(10, 64);
        c.enqueue(0, 1);
        c.dequeue(0, 1);
        let v = c.roll(10);
        assert_eq!(v, 1.0 / 64.0 / 10.0);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_pow2_capacity() {
        let _ = OccupancyIntegral::new(10, 48);
    }
}
