//! Plain-text table rendering for the bench binaries.
//!
//! The figure/table regeneration binaries print aligned ASCII tables (the
//! "same rows/series the paper reports"); this module keeps the formatting
//! in one place.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple ASCII table builder.
#[derive(Debug, Clone)]
pub struct Table {
    title: Option<String>,
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers (all right-aligned
    /// except the first).
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = headers
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Self {
            title: None,
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Sets a title printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Overrides column alignments.
    pub fn with_aligns(mut self, aligns: Vec<Align>) -> Self {
        assert_eq!(aligns.len(), self.headers.len());
        self.aligns = aligns;
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    /// If the cell count differs from the header count.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if let Some(t) = &self.title {
            let _ = writeln!(out, "{t}");
        }
        let rule: String = {
            let mut r = String::from("+");
            for w in &widths {
                r.push_str(&"-".repeat(w + 2));
                r.push('+');
            }
            r
        };
        let fmt_row = |cells: &[String], widths: &[usize], aligns: &[Align]| -> String {
            let mut line = String::from("|");
            for i in 0..cols {
                let w = widths[i];
                match aligns[i] {
                    Align::Left => {
                        let _ = write!(line, " {:<w$} |", cells[i], w = w);
                    }
                    Align::Right => {
                        let _ = write!(line, " {:>w$} |", cells[i], w = w);
                    }
                }
            }
            line
        };
        let _ = writeln!(out, "{rule}");
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths, &self.aligns));
        let _ = writeln!(out, "{rule}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths, &self.aligns));
        }
        let _ = writeln!(out, "{rule}");
        out
    }
}

/// Formats a float with the given number of decimals.
pub fn f(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

/// Formats a ratio as a percentage string, e.g. `0.25` → `"25.0%"`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["load", "thr", "lat"]).with_title("demo");
        t.row(vec!["0.1", "0.099", "23.0"]);
        t.row(vec!["0.9", "0.71", "410.5"]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("| load |"));
        // Numbers right-aligned under their headers.
        assert!(s.contains("0.099"));
        let lines: Vec<&str> = s.lines().collect();
        // title + rule + header + rule + 2 rows + rule = 7 lines
        assert_eq!(lines.len(), 7);
        let width = lines[1].len();
        assert!(lines[2..].iter().all(|l| l.len() == width));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn helpers_format() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.256), "25.6%");
    }

    #[test]
    fn empty_table_renders_headers() {
        let t = Table::new(vec!["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        let s = t.render();
        assert!(s.contains("| x |"));
    }

    #[test]
    fn custom_aligns() {
        let mut t = Table::new(vec!["a", "b"]).with_aligns(vec![Align::Right, Align::Left]);
        t.row(vec!["1", "x"]);
        let s = t.render();
        assert!(s.contains("| 1 | x"));
    }
}
