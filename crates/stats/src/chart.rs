//! Terminal line charts for the figure binaries.
//!
//! Figures 5 and 6 of the paper are line plots; [`Chart`] renders the same
//! series as a character grid so the bench binaries show the curve shapes
//! directly in the terminal, next to the exact tables.

use std::fmt::Write as _;

/// One named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Data points (need not be sorted; plotted by x).
    pub points: Vec<(f64, f64)>,
}

/// Glyphs assigned to series, in order.
const GLYPHS: [char; 6] = ['o', '+', 'x', '*', '#', '@'];

/// A fixed-size character-grid line chart.
#[derive(Debug, Clone)]
pub struct Chart {
    title: String,
    width: usize,
    height: usize,
    series: Vec<Series>,
    y_label: String,
    x_label: String,
}

impl Chart {
    /// Creates a chart of `width × height` plot cells.
    pub fn new(title: impl Into<String>, width: usize, height: usize) -> Self {
        assert!(width >= 10 && height >= 4);
        Self {
            title: title.into(),
            width,
            height,
            series: Vec::new(),
            y_label: String::new(),
            x_label: String::new(),
        }
    }

    /// Sets the axis labels.
    pub fn with_labels(mut self, x: impl Into<String>, y: impl Into<String>) -> Self {
        self.x_label = x.into();
        self.y_label = y.into();
        self
    }

    /// Adds a series (max 6).
    pub fn series(&mut self, name: impl Into<String>, points: Vec<(f64, f64)>) -> &mut Self {
        assert!(self.series.len() < GLYPHS.len(), "too many series");
        self.series.push(Series {
            name: name.into(),
            points,
        });
        self
    }

    /// Number of series added.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when no series has been added.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Renders the chart.
    pub fn render(&self) -> String {
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        if all.is_empty() {
            return format!("{}\n(no data)\n", self.title);
        }
        let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &all {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
        // Zero-base the y axis when data is non-negative: the paper's
        // figures do, and it keeps ratios honest.
        if y_min > 0.0 {
            y_min = 0.0;
        }
        if (x_max - x_min).abs() < f64::EPSILON {
            x_max = x_min + 1.0;
        }
        if (y_max - y_min).abs() < f64::EPSILON {
            y_max = y_min + 1.0;
        }
        let mut grid = vec![vec![' '; self.width]; self.height];
        for (si, s) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si];
            for &(x, y) in &s.points {
                if !x.is_finite() || !y.is_finite() {
                    continue;
                }
                let cx = ((x - x_min) / (x_max - x_min) * (self.width - 1) as f64).round() as usize;
                let cy =
                    ((y - y_min) / (y_max - y_min) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - cy;
                let cell = &mut grid[row][cx];
                // Overlap: later series win, but mark collisions distinctly.
                *cell = if *cell == ' ' || *cell == glyph {
                    glyph
                } else {
                    '‡'
                };
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let y_top = format!("{y_max:.4}");
        let y_bot = format!("{y_min:.4}");
        let margin = y_top.len().max(y_bot.len());
        for (i, row) in grid.iter().enumerate() {
            let label = if i == 0 {
                format!("{y_top:>margin$}")
            } else if i == self.height - 1 {
                format!("{y_bot:>margin$}")
            } else {
                " ".repeat(margin)
            };
            let line: String = row.iter().collect();
            let _ = writeln!(out, "{label} |{line}");
        }
        let _ = writeln!(out, "{} +{}", " ".repeat(margin), "-".repeat(self.width));
        let _ = writeln!(
            out,
            "{}  {:<w$}{:>8}",
            " ".repeat(margin),
            format!("{x_min}"),
            format!("{x_max}"),
            w = self.width.saturating_sub(8)
        );
        if !self.x_label.is_empty() || !self.y_label.is_empty() {
            let _ = writeln!(
                out,
                "{}  x: {}   y: {}",
                " ".repeat(margin),
                self.x_label,
                self.y_label
            );
        }
        let legend: Vec<String> = self
            .series
            .iter()
            .enumerate()
            .map(|(i, s)| format!("{} {}", GLYPHS[i], s.name))
            .collect();
        let _ = writeln!(out, "{}  {}", " ".repeat(margin), legend.join("   "));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_in_the_grid() {
        let mut c = Chart::new("demo", 20, 6).with_labels("load", "thr");
        c.series("a", vec![(0.1, 0.0), (0.5, 0.5), (0.9, 1.0)]);
        let s = c.render();
        assert!(s.contains("demo"));
        assert!(s.contains('o'), "glyph plotted");
        assert!(s.contains("x: load"));
        assert!(s.contains("o a"));
        // Max y labelled at the top row.
        assert!(s.contains("1.0000"));
        assert!(s.contains("0.0000"));
    }

    #[test]
    fn multiple_series_get_distinct_glyphs() {
        let mut c = Chart::new("two", 20, 6);
        c.series("first", vec![(0.0, 0.0), (1.0, 1.0)]);
        c.series("second", vec![(0.0, 1.0), (1.0, 0.0)]);
        let s = c.render();
        assert!(s.contains('o'));
        assert!(s.contains('+'));
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn collision_marker() {
        let mut c = Chart::new("overlap", 20, 6);
        c.series("a", vec![(0.5, 0.5)]);
        c.series("b", vec![(0.5, 0.5)]);
        let s = c.render();
        assert!(s.contains('‡'), "{s}");
    }

    #[test]
    fn empty_chart_is_graceful() {
        let c = Chart::new("empty", 20, 6);
        assert!(c.render().contains("no data"));
    }

    #[test]
    fn flat_series_does_not_divide_by_zero() {
        let mut c = Chart::new("flat", 20, 6);
        c.series("a", vec![(0.0, 3.0), (1.0, 3.0)]);
        let s = c.render();
        assert!(s.contains('o'));
    }

    #[test]
    fn non_finite_points_are_skipped() {
        let mut c = Chart::new("inf", 20, 6);
        c.series("a", vec![(0.0, f64::INFINITY), (0.5, 1.0), (1.0, f64::NAN)]);
        let s = c.render();
        assert!(s.contains('o'));
    }

    #[test]
    #[should_panic(expected = "too many series")]
    fn series_limit() {
        let mut c = Chart::new("limit", 20, 6);
        for i in 0..7 {
            c.series(format!("s{i}"), vec![(0.0, 0.0)]);
        }
    }
}
