//! # netstats — measurement substrate for the E-RAPID reproduction
//!
//! Everything the evaluation section of the paper measures flows through this
//! crate: link/buffer utilization over reconfiguration windows, packet
//! latency distributions, throughput in packets/node/cycle, and average link
//! power in milliwatts.
//!
//! Modules:
//! * [`running`] — numerically stable streaming mean/variance (Welford).
//! * [`histogram`] — fixed-bin latency histograms with percentile queries.
//! * [`occupancy`] — event-driven flit-cycle integrals, bit-compatible with
//!   eager per-cycle sampling (the hot-path form; DESIGN.md §10).
//! * [`windowed`] — windowed utilization counters; these are the "hardware
//!   counters located at each LC" from §3 of the paper, measuring
//!   `Link_util` and `Buffer_util` over each reconfiguration window `R_w`.
//! * [`timeseries`] — decimated time series for figure regeneration.
//! * [`batch`] — batch-means confidence intervals for steady-state outputs.
//! * [`meter`] — composite throughput/latency/power meters.
//! * [`table`] — plain-text table rendering for the bench binaries.
//! * [`csv`] — tiny CSV writer (no external dependency).

pub mod batch;
pub mod chart;
pub mod csv;
pub mod histogram;
pub mod meter;
pub mod occupancy;
pub mod running;
pub mod table;
pub mod timeseries;
pub mod windowed;

pub use histogram::Histogram;
pub use meter::{LatencyMeter, PowerMeter, ThroughputMeter};
pub use occupancy::OccupancyIntegral;
pub use running::Running;
pub use windowed::WindowedUtilization;
