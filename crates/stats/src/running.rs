//! Streaming mean / variance / extrema via Welford's algorithm.

use desim::snap::{Snap, SnapError, SnapReader, SnapWriter};

/// Numerically stable running statistics over a stream of `f64` samples.
#[derive(Debug, Clone, Default)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample (Bessel-corrected) variance.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample seen (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample seen (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Running) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Resets to empty.
    pub fn clear(&mut self) {
        *self = Self::new();
    }
}

impl Snap for Running {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.n);
        w.f64(self.mean);
        w.f64(self.m2);
        w.f64(self.min);
        w.f64(self.max);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Self {
            n: r.u64()?,
            mean: r.f64()?,
            m2: r.f64()?,
            min: r.f64()?,
            max: r.f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_defaults() {
        let r = Running::new();
        assert_eq!(r.count(), 0);
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
        assert_eq!(r.sum(), 0.0);
    }

    #[test]
    fn matches_closed_form() {
        let mut r = Running::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            r.push(x);
        }
        assert_eq!(r.count(), 8);
        assert!((r.mean() - 5.0).abs() < 1e-12);
        assert!((r.variance() - 4.0).abs() < 1e-12);
        assert!((r.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(r.min(), 2.0);
        assert_eq!(r.max(), 9.0);
        assert!((r.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let mut whole = Running::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = Running::new();
        let mut b = Running::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Running::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.clone();
        a.merge(&Running::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut empty = Running::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn clear_resets() {
        let mut r = Running::new();
        r.push(5.0);
        r.clear();
        assert_eq!(r.count(), 0);
        assert_eq!(r.mean(), 0.0);
    }

    #[test]
    fn sample_variance_uses_bessel() {
        let mut r = Running::new();
        r.push(1.0);
        r.push(3.0);
        assert!((r.variance() - 1.0).abs() < 1e-12);
        assert!((r.sample_variance() - 2.0).abs() < 1e-12);
    }
}
