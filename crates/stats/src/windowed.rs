//! Windowed utilization counters — the LC "hardware counters" of §3.
//!
//! The paper measures two statistics per optical link over each
//! reconfiguration window `R_w`:
//!
//! * `Link_util` — "the percentage of router clock cycles when a packet is
//!   being transmitted in the optical domain from the transmitter queue",
//! * `Buffer_util` — "the percentage of buffers being utilized before the
//!   packet is transmitted".
//!
//! [`WindowedUtilization`] accumulates busy cycles (or occupied-buffer
//! fractions) within the current window and freezes the previous window's
//! value when [`WindowedUtilization::roll`] is called at a window boundary —
//! the LS protocol always acts on the *prior* window ("re-allocate the
//! bandwidth for the current R_w based on previous R_w").

use desim::Cycle;

/// Utilization accumulated over fixed windows with one-window history.
#[derive(Debug, Clone)]
pub struct WindowedUtilization {
    window: Cycle,
    /// Sum of per-cycle utilization values in the running window (for
    /// Link_util each cycle contributes 0 or 1; for Buffer_util a fraction).
    acc: f64,
    /// Cycles accumulated so far in the running window.
    cycles: Cycle,
    /// Utilization of the last completed window.
    previous: f64,
    /// Number of completed windows.
    completed: u64,
}

impl WindowedUtilization {
    /// Creates a counter with the given window length (e.g. `R_w = 2000`).
    ///
    /// # Panics
    /// If `window == 0`.
    pub fn new(window: Cycle) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            window,
            acc: 0.0,
            cycles: 0,
            previous: 0.0,
            completed: 0,
        }
    }

    /// Window length in cycles.
    pub fn window(&self) -> Cycle {
        self.window
    }

    /// Records one cycle with the given utilization contribution in `[0,1]`
    /// (1.0 = busy for Link_util; occupancy fraction for Buffer_util).
    pub fn record(&mut self, value: f64) {
        debug_assert!((0.0..=1.0).contains(&value), "utilization sample {value}");
        self.acc += value;
        self.cycles += 1;
    }

    /// Records a busy cycle (shorthand for `record(1.0)`).
    pub fn record_busy(&mut self) {
        self.record(1.0);
    }

    /// Records an idle cycle (shorthand for `record(0.0)`).
    pub fn record_idle(&mut self) {
        self.record(0.0);
    }

    /// Utilization of the running (incomplete) window so far.
    pub fn current(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.acc / self.cycles as f64
        }
    }

    /// Utilization of the last completed window — what the LS protocol reads.
    pub fn previous(&self) -> f64 {
        self.previous
    }

    /// Number of completed windows.
    pub fn completed_windows(&self) -> u64 {
        self.completed
    }

    /// Closes the running window: freezes its utilization as
    /// [`previous`](Self::previous) and starts a fresh window. Normally
    /// called every `window` cycles; rolling an empty window yields 0.
    ///
    /// Returns the frozen utilization.
    pub fn roll(&mut self) -> f64 {
        // Normalise over the nominal window length so a partially-recorded
        // window (e.g. link disabled during a bit-rate transition) counts
        // the un-recorded cycles as idle — matching a hardware counter that
        // simply didn't increment.
        self.previous = self.acc / self.window as f64;
        self.previous = self.previous.clamp(0.0, 1.0);
        self.acc = 0.0;
        self.cycles = 0;
        self.completed += 1;
        self.previous
    }

    /// Resets everything, including history.
    pub fn clear(&mut self) {
        self.acc = 0.0;
        self.cycles = 0;
        self.previous = 0.0;
        self.completed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_fraction_over_window() {
        let mut u = WindowedUtilization::new(10);
        for i in 0..10 {
            if i % 2 == 0 {
                u.record_busy();
            } else {
                u.record_idle();
            }
        }
        assert!((u.current() - 0.5).abs() < 1e-12);
        let frozen = u.roll();
        assert!((frozen - 0.5).abs() < 1e-12);
        assert!((u.previous() - 0.5).abs() < 1e-12);
        assert_eq!(u.current(), 0.0);
        assert_eq!(u.completed_windows(), 1);
    }

    #[test]
    fn partial_window_counts_missing_cycles_as_idle() {
        let mut u = WindowedUtilization::new(10);
        // Only 5 cycles recorded, all busy: a disabled link's counter
        // simply stopped; utilization is 5/10, not 5/5.
        for _ in 0..5 {
            u.record_busy();
        }
        assert_eq!(u.roll(), 0.5);
    }

    #[test]
    fn fractional_buffer_utilization() {
        let mut u = WindowedUtilization::new(4);
        u.record(0.25);
        u.record(0.75);
        u.record(0.5);
        u.record(0.5);
        assert!((u.roll() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn previous_survives_new_window() {
        let mut u = WindowedUtilization::new(2);
        u.record_busy();
        u.record_busy();
        u.roll();
        u.record_idle();
        assert_eq!(u.previous(), 1.0);
        assert_eq!(u.current(), 0.0);
    }

    #[test]
    fn roll_empty_window_is_zero() {
        let mut u = WindowedUtilization::new(5);
        assert_eq!(u.roll(), 0.0);
        assert_eq!(u.completed_windows(), 1);
    }

    #[test]
    fn clear_resets_history() {
        let mut u = WindowedUtilization::new(2);
        u.record_busy();
        u.record_busy();
        u.roll();
        u.clear();
        assert_eq!(u.previous(), 0.0);
        assert_eq!(u.completed_windows(), 0);
    }

    #[test]
    fn empty_roll_after_a_completed_window_replaces_history() {
        // Finalizing an empty window is not a no-op: the LS protocol must
        // see "this link went quiet", not a stale busy reading.
        let mut u = WindowedUtilization::new(4);
        for _ in 0..4 {
            u.record_busy();
        }
        assert_eq!(u.roll(), 1.0);
        assert_eq!(u.roll(), 0.0, "empty window must freeze as idle");
        assert_eq!(u.previous(), 0.0);
        assert_eq!(u.completed_windows(), 2);
    }

    #[test]
    fn clear_mid_window_discards_partial_accumulation() {
        let mut u = WindowedUtilization::new(4);
        u.record_busy();
        u.record_busy();
        u.clear();
        // The interrupted window's busy cycles must not leak into the next
        // roll, and the window geometry is unchanged.
        assert_eq!(u.current(), 0.0);
        assert_eq!(u.window(), 4);
        u.record(0.5);
        assert_eq!(u.roll(), 0.125); // 0.5 over the nominal 4-cycle window
        assert_eq!(u.completed_windows(), 1);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        WindowedUtilization::new(0);
    }
}
