//! Composite meters for the paper's three reported quantities:
//! throughput (packets/node/cycle), latency (cycles), and power (mW).

use crate::histogram::Histogram;
use crate::running::Running;
use desim::snap::{Snap, SnapError, SnapReader, SnapWriter};
use desim::Cycle;

/// Measures accepted throughput over a measurement interval.
///
/// The paper reports throughput as packets/node/cycle (normalised to network
/// capacity by the caller when plotting).
#[derive(Debug, Clone)]
pub struct ThroughputMeter {
    nodes: usize,
    delivered: u64,
    delivered_flits: u64,
    start: Option<Cycle>,
    end: Cycle,
}

impl ThroughputMeter {
    /// Creates a meter for a network of `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0);
        Self {
            nodes,
            delivered: 0,
            delivered_flits: 0,
            start: None,
            end: 0,
        }
    }

    /// Marks the beginning of the measurement interval.
    pub fn start(&mut self, now: Cycle) {
        self.start = Some(now);
        self.end = now;
    }

    /// Records the delivery of one measured packet of `flits` flits.
    pub fn deliver(&mut self, now: Cycle, flits: u32) {
        self.delivered += 1;
        self.delivered_flits += flits as u64;
        self.end = self.end.max(now);
    }

    /// Total measured packets delivered.
    pub fn packets(&self) -> u64 {
        self.delivered
    }

    /// Total measured flits delivered.
    pub fn flits(&self) -> u64 {
        self.delivered_flits
    }

    /// Accepted throughput in packets/node/cycle over `[start, horizon]`.
    ///
    /// `horizon` should be the end of the measurement interval (not the drain
    /// end): packets *injected* during measurement are counted wherever they
    /// complete, per the paper's labelled-packet methodology.
    pub fn throughput(&self, horizon: Cycle) -> f64 {
        let Some(start) = self.start else {
            return 0.0;
        };
        let span = horizon.saturating_sub(start);
        if span == 0 {
            return 0.0;
        }
        self.delivered as f64 / (self.nodes as f64 * span as f64)
    }
}

/// Measures end-to-end packet latency (injection to delivery, in cycles).
#[derive(Debug, Clone)]
pub struct LatencyMeter {
    stats: Running,
    hist: Histogram,
}

impl LatencyMeter {
    /// Creates a meter with a histogram of `bins` bins of `bin_width` cycles.
    pub fn new(bins: usize, bin_width: f64) -> Self {
        Self {
            stats: Running::new(),
            hist: Histogram::new(bins, bin_width),
        }
    }

    /// Default geometry: 2048 bins of 8 cycles (covers 16k cycles).
    pub fn standard() -> Self {
        Self::new(2048, 8.0)
    }

    /// Records a delivered packet injected at `injected` and delivered `now`.
    pub fn record(&mut self, injected: Cycle, now: Cycle) {
        debug_assert!(now >= injected);
        let lat = (now - injected) as f64;
        self.stats.push(lat);
        self.hist.record(lat);
    }

    /// Number of packets measured.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Mean latency in cycles.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Maximum observed latency.
    pub fn max(&self) -> f64 {
        if self.stats.count() == 0 {
            0.0
        } else {
            self.stats.max()
        }
    }

    /// 95th-percentile latency, if any packets were measured.
    pub fn p95(&self) -> Option<f64> {
        self.hist.p95()
    }

    /// 99th-percentile latency, if any packets were measured.
    pub fn p99(&self) -> Option<f64> {
        self.hist.p99()
    }

    /// Access to the underlying histogram.
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }
}

/// Integrates link power over time to report average power in mW.
///
/// Each cycle the model reports the instantaneous total power draw of the
/// optical links; the meter integrates mW·cycles and divides by elapsed
/// cycles.
#[derive(Debug, Clone, Default)]
pub struct PowerMeter {
    mw_cycles: f64,
    cycles: u64,
    peak_mw: f64,
}

impl PowerMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one cycle at the given instantaneous power draw (mW).
    pub fn record(&mut self, mw: f64) {
        debug_assert!(mw >= 0.0);
        self.mw_cycles += mw;
        self.cycles += 1;
        self.peak_mw = self.peak_mw.max(mw);
    }

    /// Average power in mW over the recorded cycles.
    pub fn average_mw(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.mw_cycles / self.cycles as f64
        }
    }

    /// Peak instantaneous power in mW.
    pub fn peak_mw(&self) -> f64 {
        self.peak_mw
    }

    /// Total energy in mW·cycles (multiply by 2.5 ns for mJ at 400 MHz).
    pub fn energy_mw_cycles(&self) -> f64 {
        self.mw_cycles
    }

    /// Cycles recorded.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }
}

impl Snap for ThroughputMeter {
    fn save(&self, w: &mut SnapWriter) {
        w.usize(self.nodes);
        w.u64(self.delivered);
        w.u64(self.delivered_flits);
        self.start.save(w);
        w.u64(self.end);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let nodes = r.usize()?;
        if nodes == 0 {
            return Err(SnapError::Format(
                "throughput meter with 0 nodes".to_string(),
            ));
        }
        Ok(Self {
            nodes,
            delivered: r.u64()?,
            delivered_flits: r.u64()?,
            start: Option::<Cycle>::load(r)?,
            end: r.u64()?,
        })
    }
}

impl Snap for LatencyMeter {
    fn save(&self, w: &mut SnapWriter) {
        self.stats.save(w);
        self.hist.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Self {
            stats: Running::load(r)?,
            hist: Histogram::load(r)?,
        })
    }
}

impl Snap for PowerMeter {
    fn save(&self, w: &mut SnapWriter) {
        w.f64(self.mw_cycles);
        w.u64(self.cycles);
        w.f64(self.peak_mw);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Self {
            mw_cycles: r.f64()?,
            cycles: r.u64()?,
            peak_mw: r.f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_normalises_per_node_per_cycle() {
        let mut m = ThroughputMeter::new(4);
        m.start(100);
        for t in 101..=140 {
            m.deliver(t, 8);
        }
        // 40 packets over 100 cycles and 4 nodes = 0.1 pkt/node/cycle.
        assert!((m.throughput(200) - 0.1).abs() < 1e-12);
        assert_eq!(m.packets(), 40);
        assert_eq!(m.flits(), 320);
    }

    #[test]
    fn throughput_before_start_is_zero() {
        let m = ThroughputMeter::new(4);
        assert_eq!(m.throughput(100), 0.0);
        let mut m = ThroughputMeter::new(4);
        m.start(50);
        assert_eq!(m.throughput(50), 0.0);
    }

    #[test]
    fn latency_mean_and_percentiles() {
        let mut m = LatencyMeter::standard();
        for (inj, del) in [(0, 10), (0, 20), (0, 30)] {
            m.record(inj, del);
        }
        assert_eq!(m.count(), 3);
        assert!((m.mean() - 20.0).abs() < 1e-12);
        assert_eq!(m.max(), 30.0);
        assert!(m.p95().unwrap() >= 24.0);
        assert!(m.p99().is_some());
    }

    #[test]
    fn empty_latency_meter() {
        let m = LatencyMeter::standard();
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.max(), 0.0);
        assert!(m.p95().is_none());
    }

    #[test]
    fn single_sample_percentiles_agree_with_the_sample() {
        // One packet: every percentile is that packet's bin, and the order
        // p50 <= p95 <= p99 still holds (a degenerate but legal histogram).
        let mut m = LatencyMeter::new(64, 8.0);
        m.record(100, 142); // latency 42 -> bin [40, 48)
        assert_eq!(m.count(), 1);
        assert_eq!(m.mean(), 42.0);
        let p50 = m.histogram().p50().unwrap();
        let p95 = m.p95().unwrap();
        let p99 = m.p99().unwrap();
        assert!(p50 <= p95 && p95 <= p99);
        for p in [p50, p95, p99] {
            assert!((40.0..=48.0).contains(&p), "percentile {p} off-bin");
        }
    }

    #[test]
    fn throughput_over_an_empty_interval_is_zero() {
        // Deliveries recorded but the horizon never advanced past start
        // (e.g. measurement aborted on the starting cycle): no span, no
        // throughput, no division by zero.
        let mut m = ThroughputMeter::new(8);
        m.start(500);
        m.deliver(500, 4);
        assert_eq!(m.throughput(500), 0.0);
        assert_eq!(m.throughput(400), 0.0, "horizon before start saturates");
        assert_eq!(m.packets(), 1);
    }

    #[test]
    fn power_average_and_peak() {
        let mut p = PowerMeter::new();
        p.record(10.0);
        p.record(30.0);
        assert!((p.average_mw() - 20.0).abs() < 1e-12);
        assert_eq!(p.peak_mw(), 30.0);
        assert_eq!(p.cycles(), 2);
        assert!((p.energy_mw_cycles() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn empty_power_meter_is_zero() {
        let p = PowerMeter::new();
        assert_eq!(p.average_mw(), 0.0);
        assert_eq!(p.peak_mw(), 0.0);
    }
}
