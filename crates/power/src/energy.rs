//! Per-link energy accounting.
//!
//! Every cycle a link is in exactly one of three conditions; the accountant
//! charges:
//!
//! * **active** (a flit on the wire) — the full level power `P(level)`,
//! * **idle-on** (laser on, nothing to send) — `P(level) × idle_fraction`,
//! * **off** — nothing.
//!
//! Transition (dark) cycles are charged as idle-on at the *target* level:
//! the circuitry is powered and ramping but not moving data.

use netstats::meter::PowerMeter;
use photonics::bitrate::RateLevel;
use photonics::power::LinkPowerModel;

/// The condition of a link during one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkCondition {
    /// A flit occupied the wavelength this cycle.
    Active,
    /// Laser on, no data (includes transition dark time).
    IdleOn,
    /// Laser off.
    Off,
}

/// Integrates one link's power over time.
#[derive(Debug, Clone)]
pub struct EnergyAccountant {
    model: LinkPowerModel,
    meter: PowerMeter,
    active_cycles: u64,
    idle_cycles: u64,
    off_cycles: u64,
}

impl EnergyAccountant {
    /// Creates an accountant over the given power model.
    pub fn new(model: LinkPowerModel) -> Self {
        Self {
            model,
            meter: PowerMeter::new(),
            active_cycles: 0,
            idle_cycles: 0,
            off_cycles: 0,
        }
    }

    /// The power model in use.
    pub fn model(&self) -> &LinkPowerModel {
        &self.model
    }

    /// Instantaneous power for a condition at a level, mW.
    pub fn instantaneous_mw(&self, condition: LinkCondition, level: RateLevel) -> f64 {
        match condition {
            LinkCondition::Active => self.model.active_mw(level),
            LinkCondition::IdleOn => self.model.idle_mw(level),
            LinkCondition::Off => 0.0,
        }
    }

    /// Records one cycle in the given condition at the given level and
    /// returns the power charged (mW).
    pub fn record(&mut self, condition: LinkCondition, level: RateLevel) -> f64 {
        let mw = self.instantaneous_mw(condition, level);
        self.meter.record(mw);
        match condition {
            LinkCondition::Active => self.active_cycles += 1,
            LinkCondition::IdleOn => self.idle_cycles += 1,
            LinkCondition::Off => self.off_cycles += 1,
        }
        mw
    }

    /// Average power over all recorded cycles, mW.
    pub fn average_mw(&self) -> f64 {
        self.meter.average_mw()
    }

    /// Total energy in mW·cycles.
    pub fn energy_mw_cycles(&self) -> f64 {
        self.meter.energy_mw_cycles()
    }

    /// `(active, idle_on, off)` cycle counts.
    pub fn cycle_split(&self) -> (u64, u64, u64) {
        (self.active_cycles, self.idle_cycles, self.off_cycles)
    }

    /// Duty cycle: fraction of on-cycles spent active.
    pub fn duty_cycle(&self) -> f64 {
        let on = self.active_cycles + self.idle_cycles;
        if on == 0 {
            0.0
        } else {
            self.active_cycles as f64 / on as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photonics::power::{LinkPowerModel, PAPER_LADDER_MW};

    fn acct() -> EnergyAccountant {
        EnergyAccountant::new(LinkPowerModel::paper_table().with_idle_fraction(0.05))
    }

    #[test]
    fn charges_by_condition() {
        // Pinned to the canonical paper ladder (8.6/26/43.03 mW) — the
        // accountant must charge exactly the published Table 1 numbers.
        let mut a = acct();
        let high = RateLevel(2);
        assert!((a.record(LinkCondition::Active, high) - PAPER_LADDER_MW[2]).abs() < 1e-9);
        assert!((a.record(LinkCondition::IdleOn, high) - PAPER_LADDER_MW[2] * 0.05).abs() < 1e-9);
        assert_eq!(a.record(LinkCondition::Off, high), 0.0);
        assert_eq!(a.cycle_split(), (1, 1, 1));
    }

    #[test]
    fn average_over_mixed_cycles() {
        let mut a = acct();
        let low = RateLevel(0);
        a.record(LinkCondition::Active, low); // PAPER_LADDER_MW[0] = 8.6
        a.record(LinkCondition::Off, low); // 0
        assert!((a.average_mw() - PAPER_LADDER_MW[0] / 2.0).abs() < 1e-9);
        assert!((a.energy_mw_cycles() - PAPER_LADDER_MW[0]).abs() < 1e-9);
    }

    #[test]
    fn duty_cycle_ignores_off_time() {
        let mut a = acct();
        let l = RateLevel(1);
        a.record(LinkCondition::Active, l);
        a.record(LinkCondition::IdleOn, l);
        a.record(LinkCondition::IdleOn, l);
        a.record(LinkCondition::Off, l);
        assert!((a.duty_cycle() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_accountant() {
        let a = acct();
        assert_eq!(a.average_mw(), 0.0);
        assert_eq!(a.duty_cycle(), 0.0);
        assert_eq!(a.model().active_mw(RateLevel(2)), PAPER_LADDER_MW[2]);
    }

    #[test]
    fn lower_level_saves_energy_per_active_cycle() {
        let mut a = acct();
        let p_low = a.record(LinkCondition::Active, RateLevel(0));
        let p_high = a.record(LinkCondition::Active, RateLevel(2));
        assert!(p_low < p_high);
    }
}
