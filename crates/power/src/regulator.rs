//! The per-LC regulator: policy + ladder + transition model.
//!
//! Each power-awareness window the LC feeds the previous window's
//! `Link_util`/`Buffer_util` into the regulator, which returns the concrete
//! action: retune to a target level (with a dark-time penalty) or hold.
//! "The bit rate scaling is locally controlled by the LC" (§3.1).

use crate::policy::{DpmPolicy, ScaleDecision};
use crate::transition::TransitionModel;
use desim::Cycle;
use photonics::bitrate::{RateLadder, RateLevel};

/// The action the LC applies after a power-awareness cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegulatorAction {
    /// Stay at the current level.
    Hold,
    /// Retune to the level, disabling the link for the penalty.
    Retune {
        /// Target rate level.
        level: RateLevel,
        /// Dark cycles charged for the transition.
        penalty: Cycle,
    },
}

/// Per-link DPM regulator.
#[derive(Debug, Clone)]
pub struct LinkRegulator {
    policy: DpmPolicy,
    ladder: RateLadder,
    transition: TransitionModel,
    level: RateLevel,
    scale_ups: u64,
    scale_downs: u64,
}

impl LinkRegulator {
    /// Creates a regulator starting at the ladder's highest level (links
    /// boot at full rate, as in the paper's NP baselines).
    pub fn new(policy: DpmPolicy, ladder: RateLadder, transition: TransitionModel) -> Self {
        let level = ladder.highest();
        Self {
            policy,
            ladder,
            transition,
            level,
            scale_ups: 0,
            scale_downs: 0,
        }
    }

    /// Current level.
    pub fn level(&self) -> RateLevel {
        self.level
    }

    /// The policy in use.
    pub fn policy(&self) -> &DpmPolicy {
        &self.policy
    }

    /// Lifetime `(ups, downs)` transition counts.
    pub fn transitions(&self) -> (u64, u64) {
        (self.scale_ups, self.scale_downs)
    }

    /// Feeds one window's statistics; returns the action and updates the
    /// regulator's notion of the level.
    pub fn observe(&mut self, link_util: f64, buffer_util: f64) -> RegulatorAction {
        let decision = self.policy.decide(link_util, buffer_util);
        let target = match decision {
            ScaleDecision::Down => self.ladder.down(self.level),
            ScaleDecision::Up => self.ladder.up(self.level),
            ScaleDecision::Hold => self.level,
        };
        if target == self.level {
            return RegulatorAction::Hold;
        }
        let penalty = self.transition.penalty_between(self.level, target);
        match decision {
            ScaleDecision::Up => self.scale_ups += 1,
            ScaleDecision::Down => self.scale_downs += 1,
            ScaleDecision::Hold => unreachable!("hold never changes level"),
        }
        self.level = target;
        RegulatorAction::Retune {
            level: target,
            penalty,
        }
    }

    /// Forces the level (used when DBR hands a channel to a new owner that
    /// must match the receiver's lock).
    pub fn force_level(&mut self, level: RateLevel) {
        assert!(level.index() < self.ladder.len());
        self.level = level;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::DpmPolicy;

    fn reg() -> LinkRegulator {
        LinkRegulator::new(
            DpmPolicy::power_bandwidth(),
            RateLadder::paper(),
            TransitionModel::paper(),
        )
    }

    #[test]
    fn starts_at_highest() {
        let r = reg();
        assert_eq!(r.level(), RateLevel(2));
        assert_eq!(r.policy().l_max, 0.9);
    }

    #[test]
    fn idle_link_walks_down_to_lowest() {
        let mut r = reg();
        assert_eq!(
            r.observe(0.0, 0.0),
            RegulatorAction::Retune {
                level: RateLevel(1),
                penalty: 65
            }
        );
        assert_eq!(
            r.observe(0.0, 0.0),
            RegulatorAction::Retune {
                level: RateLevel(0),
                penalty: 65
            }
        );
        // At the bottom, Down saturates into Hold.
        assert_eq!(r.observe(0.0, 0.0), RegulatorAction::Hold);
        assert_eq!(r.level(), RateLevel(0));
        assert_eq!(r.transitions(), (0, 2));
    }

    #[test]
    fn congested_link_walks_back_up() {
        let mut r = reg();
        r.observe(0.0, 0.0); // -> mid
        assert_eq!(
            r.observe(0.95, 0.5),
            RegulatorAction::Retune {
                level: RateLevel(2),
                penalty: 65
            }
        );
        // At the top, Up saturates into Hold.
        assert_eq!(r.observe(0.95, 0.5), RegulatorAction::Hold);
        assert_eq!(r.transitions(), (1, 1));
    }

    #[test]
    fn mid_band_holds_without_transition() {
        let mut r = reg();
        assert_eq!(r.observe(0.8, 0.1), RegulatorAction::Hold);
        assert_eq!(r.level(), RateLevel(2));
        assert_eq!(r.transitions(), (0, 0));
    }

    #[test]
    fn force_level_overrides() {
        let mut r = reg();
        r.force_level(RateLevel(0));
        assert_eq!(r.level(), RateLevel(0));
        // Saturated + queued: scales up from the forced level.
        assert_eq!(
            r.observe(1.0, 1.0),
            RegulatorAction::Retune {
                level: RateLevel(1),
                penalty: 65
            }
        );
    }
}
