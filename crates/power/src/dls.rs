//! Dynamic Link Shutdown (DLS) with hysteresis.
//!
//! DLS (Kim et al., ISLPED'03, cited as \[14\]) "turns down the link if it is
//! not heavily used and turns up the link when needed". In E-RAPID the DBR
//! stage is what normally turns off idle lasers; this module provides the
//! standalone DLS policy used by the ablation benches and by the DBR stage's
//! shutdown criterion: a link whose utilization stayed below a threshold for
//! `off_after` consecutive windows is shut down, and is woken as soon as
//! demand (buffer occupancy) reappears.

use desim::Cycle;
use erapid_telemetry::{TraceEvent, TraceSink};

/// Shutdown/wake decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DlsDecision {
    /// Keep the link as it is.
    Keep,
    /// Shut the link down.
    Shutdown,
    /// Wake the link up.
    Wake,
}

/// Per-link DLS state machine with consecutive-window hysteresis.
#[derive(Debug, Clone)]
pub struct DlsPolicy {
    /// Utilization below which a window counts as idle.
    idle_threshold: f64,
    /// Consecutive idle windows before shutdown.
    off_after: u32,
    idle_windows: u32,
    is_off: bool,
}

impl DlsPolicy {
    /// Creates a policy: shut down after `off_after` consecutive windows
    /// with utilization below `idle_threshold`.
    pub fn new(idle_threshold: f64, off_after: u32) -> Self {
        assert!((0.0..=1.0).contains(&idle_threshold));
        assert!(off_after >= 1);
        Self {
            idle_threshold,
            off_after,
            idle_windows: 0,
            is_off: false,
        }
    }

    /// Default: shut down after 2 completely idle windows.
    pub fn standard() -> Self {
        Self::new(1.0e-6, 2)
    }

    /// Whether the policy currently holds the link off.
    pub fn is_off(&self) -> bool {
        self.is_off
    }

    /// Consecutive idle windows observed so far.
    pub fn idle_windows(&self) -> u32 {
        self.idle_windows
    }

    /// Feeds one window's statistics; returns the decision.
    ///
    /// `buffer_util > 0` while off signals queued demand and wakes the link.
    pub fn observe(&mut self, link_util: f64, buffer_util: f64) -> DlsDecision {
        if self.is_off {
            if buffer_util > 0.0 {
                self.is_off = false;
                self.idle_windows = 0;
                return DlsDecision::Wake;
            }
            return DlsDecision::Keep;
        }
        if link_util < self.idle_threshold && buffer_util <= 0.0 {
            self.idle_windows += 1;
            if self.idle_windows >= self.off_after {
                self.is_off = true;
                return DlsDecision::Shutdown;
            }
        } else {
            self.idle_windows = 0;
        }
        DlsDecision::Keep
    }

    /// As [`DlsPolicy::observe`], emitting a [`TraceEvent::DlsPower`] at
    /// cycle `at` for link `(src → dest, wavelength)` whenever the supply
    /// state actually changes (Shutdown/Wake; Keep is silent).
    pub fn observe_traced(
        &mut self,
        link_util: f64,
        buffer_util: f64,
        at: Cycle,
        link: (u16, u16, u16),
        sink: &mut dyn TraceSink,
    ) -> DlsDecision {
        let decision = self.observe(link_util, buffer_util);
        if sink.enabled() {
            let off = match decision {
                DlsDecision::Shutdown => true,
                DlsDecision::Wake => false,
                DlsDecision::Keep => return decision,
            };
            let (src, dest, wavelength) = link;
            sink.emit(
                at,
                TraceEvent::DlsPower {
                    src,
                    dest,
                    wavelength,
                    off,
                },
            );
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuts_down_after_consecutive_idle_windows() {
        let mut d = DlsPolicy::standard();
        assert_eq!(d.observe(0.0, 0.0), DlsDecision::Keep);
        assert_eq!(d.idle_windows(), 1);
        assert_eq!(d.observe(0.0, 0.0), DlsDecision::Shutdown);
        assert!(d.is_off());
    }

    #[test]
    fn activity_resets_the_counter() {
        let mut d = DlsPolicy::standard();
        d.observe(0.0, 0.0);
        assert_eq!(d.observe(0.5, 0.0), DlsDecision::Keep);
        assert_eq!(d.idle_windows(), 0);
        d.observe(0.0, 0.0);
        assert_eq!(d.observe(0.0, 0.0), DlsDecision::Shutdown);
    }

    #[test]
    fn wakes_on_demand() {
        let mut d = DlsPolicy::standard();
        d.observe(0.0, 0.0);
        d.observe(0.0, 0.0);
        assert!(d.is_off());
        assert_eq!(d.observe(0.0, 0.0), DlsDecision::Keep);
        assert_eq!(d.observe(0.0, 0.2), DlsDecision::Wake);
        assert!(!d.is_off());
    }

    #[test]
    fn queued_demand_prevents_shutdown() {
        let mut d = DlsPolicy::standard();
        // Link idle but buffers non-empty (e.g. blocked upstream): keep.
        assert_eq!(d.observe(0.0, 0.4), DlsDecision::Keep);
        assert_eq!(d.idle_windows(), 0);
    }

    #[test]
    fn custom_threshold() {
        let mut d = DlsPolicy::new(0.1, 1);
        assert_eq!(d.observe(0.05, 0.0), DlsDecision::Shutdown);
    }

    #[test]
    fn traced_observe_emits_only_state_changes() {
        use erapid_telemetry::RingRecorder;

        let mut d = DlsPolicy::standard();
        let mut rec = RingRecorder::new(16);
        let link = (0, 1, 2);
        d.observe_traced(0.0, 0.0, 2000, link, &mut rec); // keep
        d.observe_traced(0.0, 0.0, 4000, link, &mut rec); // shutdown
        d.observe_traced(0.0, 0.0, 6000, link, &mut rec); // keep (off)
        d.observe_traced(0.0, 0.3, 8000, link, &mut rec); // wake
        let recs = rec.take_records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].at, 4000);
        assert!(matches!(
            recs[0].event,
            TraceEvent::DlsPower {
                src: 0,
                dest: 1,
                wavelength: 2,
                off: true
            }
        ));
        assert!(matches!(
            recs[1].event,
            TraceEvent::DlsPower { off: false, .. }
        ));
    }
}
