//! Voltage/frequency transition timing (§3.1, §4.1).
//!
//! "Increasing the link speed involves increasing the voltage before
//! scaling the frequency. Similarly, the frequency is decreased before
//! scaling the voltage. The delay penalty is limited to frequency
//! transitions as this requires the CDR ... to relock." The numbers come
//! from Chen et al. (HPCA'05): 12 cycles of link disable per frequency
//! transition, 65 cycles for a voltage ramp across adjacent levels. The
//! paper then states: "after the control bit rate packet is transmitted,
//! the transmitter conservatively disables the link for 65 cycles" — that
//! conservative mode is the default used by the reproduction's experiments.

use desim::Cycle;
use erapid_telemetry::TraceEvent;
use photonics::bitrate::RateLevel;

/// How transition penalties are charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PenaltyMode {
    /// The paper's evaluation setting: every rate change disables the link
    /// for the full voltage-ramp bound.
    Conservative,
    /// The Chen et al. detailed model: only the CDR re-lock (frequency
    /// transition) disables the link; voltage ramps overlap with operation.
    FrequencyOnly,
}

/// Transition timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionModel {
    /// Cycles the link is dark for a CDR re-lock (frequency transition).
    pub freq_penalty: Cycle,
    /// Cycles for a voltage ramp across adjacent levels.
    pub volt_penalty: Cycle,
    /// Charging mode.
    pub mode: PenaltyMode,
}

impl TransitionModel {
    /// The paper's conservative model: 65 dark cycles per transition.
    pub fn paper() -> Self {
        Self {
            freq_penalty: 12,
            volt_penalty: 65,
            mode: PenaltyMode::Conservative,
        }
    }

    /// The detailed model: 12 dark cycles per transition.
    pub fn detailed() -> Self {
        Self {
            freq_penalty: 12,
            volt_penalty: 65,
            mode: PenaltyMode::FrequencyOnly,
        }
    }

    /// Dark cycles charged for a transition between adjacent levels.
    pub fn penalty(&self) -> Cycle {
        match self.mode {
            PenaltyMode::Conservative => self.volt_penalty,
            PenaltyMode::FrequencyOnly => self.freq_penalty,
        }
    }

    /// Dark cycles for a transition spanning several levels. Levels ramp
    /// one at a time ("scaling the power level focuses on reducing the
    /// delay incurred during the slow voltage transitions"), so the dark
    /// window scales with the level distance in conservative mode; the CDR
    /// re-locks once regardless in frequency-only mode.
    pub fn penalty_between(&self, from: RateLevel, to: RateLevel) -> Cycle {
        let dist = from.index().abs_diff(to.index()) as Cycle;
        if dist == 0 {
            return 0;
        }
        match self.mode {
            PenaltyMode::Conservative => self.volt_penalty * dist,
            PenaltyMode::FrequencyOnly => self.freq_penalty,
        }
    }

    /// Builds the [`TraceEvent::DpmRetune`] for a DPM decision on channel
    /// `(src → dest, wavelength)` moving `from → to`, so the trace carries
    /// exactly the dark-window penalty this model charges.
    pub fn retune_event(
        &self,
        src: u16,
        dest: u16,
        wavelength: u16,
        from: RateLevel,
        to: RateLevel,
    ) -> TraceEvent {
        TraceEvent::DpmRetune {
            src,
            dest,
            wavelength,
            from_level: from.0,
            to_level: to.0,
            penalty: self.penalty_between(from, to),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_charges_65() {
        let m = TransitionModel::paper();
        assert_eq!(m.penalty(), 65);
        assert_eq!(m.penalty_between(RateLevel(2), RateLevel(1)), 65);
        assert_eq!(m.penalty_between(RateLevel(0), RateLevel(2)), 130);
    }

    #[test]
    fn detailed_model_charges_cdr_only() {
        let m = TransitionModel::detailed();
        assert_eq!(m.penalty(), 12);
        assert_eq!(m.penalty_between(RateLevel(0), RateLevel(2)), 12);
    }

    #[test]
    fn no_transition_no_penalty() {
        let m = TransitionModel::paper();
        assert_eq!(m.penalty_between(RateLevel(1), RateLevel(1)), 0);
    }

    #[test]
    fn retune_event_carries_the_charged_penalty() {
        let m = TransitionModel::paper();
        let ev = m.retune_event(0, 1, 2, RateLevel(2), RateLevel(0));
        assert_eq!(
            ev,
            TraceEvent::DpmRetune {
                src: 0,
                dest: 1,
                wavelength: 2,
                from_level: 2,
                to_level: 0,
                penalty: 130,
            }
        );
    }

    #[test]
    fn direction_symmetric() {
        let m = TransitionModel::paper();
        assert_eq!(
            m.penalty_between(RateLevel(0), RateLevel(1)),
            m.penalty_between(RateLevel(1), RateLevel(0))
        );
    }
}
