//! The DPM threshold policy of §3.1.
//!
//! Each power-awareness cycle the LC compares the previous window's
//! `Link_util` and `Buffer_util` against three thresholds:
//!
//! * `Link_util < L_min` → scale the bit rate **down** one level,
//! * `Link_util > L_max` **and** `Buffer_util > B_max` → scale **up** one
//!   level,
//! * otherwise → hold.
//!
//! "We aggressively push the link utilization to the limit ... instead of
//! simply scaling the bit rate if Link_util exceeds L_max, we incorporate
//! additional power savings by not only saturating the link, but also
//! waiting until the buffer utilization exceeds B_max."
//!
//! The P-NB preset sets `B_max = 0` (any queueing triggers the up-scale) and
//! a lower `L_max = 0.7`: "in P-NB, the links are not allowed to completely
//! saturate as there are no additional links/bandwidth to provide in case
//! they are saturated. Therefore, we conservatively increase the bit rate
//! when it is about to saturate."

/// What the regulator should do with the link's bit rate this window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Move one level down (save power).
    Down,
    /// Keep the current level.
    Hold,
    /// Move one level up (add bandwidth).
    Up,
}

/// Threshold set for the DPM regulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpmPolicy {
    /// Scale down below this link utilization.
    pub l_min: f64,
    /// Scale up above this link utilization...
    pub l_max: f64,
    /// ...but only once buffer utilization also exceeds this.
    pub b_max: f64,
}

impl DpmPolicy {
    /// Creates a policy; thresholds must satisfy `0 ≤ l_min ≤ l_max ≤ 1`.
    pub fn new(l_min: f64, l_max: f64, b_max: f64) -> Self {
        assert!((0.0..=1.0).contains(&l_min));
        assert!((0.0..=1.0).contains(&l_max));
        assert!((0.0..=1.0).contains(&b_max));
        assert!(l_min <= l_max, "l_min must not exceed l_max");
        Self {
            l_min,
            l_max,
            b_max,
        }
    }

    /// The paper's P-B (power-aware, bandwidth-reconfigured) thresholds:
    /// `L_min = 0.7`, `L_max = 0.9`, `B_max = 0.3`.
    pub fn power_bandwidth() -> Self {
        Self::new(0.7, 0.9, 0.3)
    }

    /// The paper's P-NB (power-aware, non-bandwidth-reconfigured)
    /// thresholds: `L_min = 0.5`, `L_max = 0.7`, `B_max = 0.0` —
    /// conservative up-scaling since no spare bandwidth exists.
    ///
    /// (The paper states `L_max = 0.7` and `B_max = 0` for P-NB; it keeps
    /// `L_min` unspecified, so we place it a band below `L_max` the same
    /// 0.2 width the P-B setting uses.)
    pub fn power_only() -> Self {
        Self::new(0.5, 0.7, 0.0)
    }

    /// The decision for one link given the previous window's statistics.
    pub fn decide(&self, link_util: f64, buffer_util: f64) -> ScaleDecision {
        debug_assert!((0.0..=1.0).contains(&link_util));
        debug_assert!((0.0..=1.0).contains(&buffer_util));
        if link_util < self.l_min {
            ScaleDecision::Down
        } else if link_util > self.l_max && buffer_util > self.b_max {
            ScaleDecision::Up
        } else {
            ScaleDecision::Hold
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets() {
        let pb = DpmPolicy::power_bandwidth();
        assert_eq!((pb.l_min, pb.l_max, pb.b_max), (0.7, 0.9, 0.3));
        let pnb = DpmPolicy::power_only();
        assert_eq!((pnb.l_max, pnb.b_max), (0.7, 0.0));
    }

    #[test]
    fn low_utilization_scales_down() {
        let p = DpmPolicy::power_bandwidth();
        assert_eq!(p.decide(0.0, 0.0), ScaleDecision::Down);
        assert_eq!(p.decide(0.69, 0.9), ScaleDecision::Down);
    }

    #[test]
    fn mid_band_holds() {
        let p = DpmPolicy::power_bandwidth();
        assert_eq!(p.decide(0.7, 0.0), ScaleDecision::Hold);
        assert_eq!(p.decide(0.8, 1.0), ScaleDecision::Hold);
        assert_eq!(p.decide(0.9, 1.0), ScaleDecision::Hold); // not strictly above
    }

    #[test]
    fn up_requires_both_thresholds() {
        let p = DpmPolicy::power_bandwidth();
        // Saturated link but little queueing: hold (extra power saving).
        assert_eq!(p.decide(0.95, 0.2), ScaleDecision::Hold);
        assert_eq!(p.decide(0.95, 0.3), ScaleDecision::Hold); // not strictly above
        assert_eq!(p.decide(0.95, 0.31), ScaleDecision::Up);
    }

    #[test]
    fn pnb_scales_up_on_any_queueing() {
        let p = DpmPolicy::power_only();
        assert_eq!(p.decide(0.75, 0.01), ScaleDecision::Up);
        assert_eq!(p.decide(0.75, 0.0), ScaleDecision::Hold);
        assert_eq!(p.decide(0.4, 0.5), ScaleDecision::Down);
    }

    #[test]
    #[should_panic(expected = "l_min must not exceed l_max")]
    fn inverted_band_rejected() {
        DpmPolicy::new(0.9, 0.7, 0.0);
    }
}
