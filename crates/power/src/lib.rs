//! # powermgmt — Dynamic Power Management (DPM) for E-RAPID links
//!
//! Implements §3.1 of the paper:
//!
//! * [`policy`] — the threshold regulator: scale the bit rate down when
//!   `Link_util < L_min`, up when `Link_util > L_max` **and** (in the P-B
//!   configuration) `Buffer_util > B_max`, hold otherwise; with the paper's
//!   presets (P-NB: `L_max = 0.7`, `B_max = 0`; P-B: `L_min = 0.7`,
//!   `L_max = 0.9`, `B_max = 0.3`).
//! * [`transition`] — the voltage/frequency transition model: voltage ramps
//!   before frequency on the way up and after it on the way down; the delay
//!   penalty is the CDR re-lock (12 cycles) but the paper "conservatively
//!   disables the link for 65 cycles" (the slow voltage-transition bound),
//!   which is the default here.
//! * [`energy`] — per-link power integration using the photonics power
//!   model (active vs idle vs off cycles).
//! * [`dls`] — Dynamic Link Shutdown: a link idle for consecutive windows
//!   is turned off entirely (the DLS technique of Kim et al. the paper
//!   cites; in E-RAPID idle lasers are turned off by the DBR stage, and this
//!   module provides the standalone policy plus hysteresis).
//! * [`regulator`] — a per-LC regulator composing policy + transition into
//!   the action the link controller applies each power-awareness window.

//!
//! ## Example: the threshold regulator
//!
//! ```
//! use powermgmt::policy::DpmPolicy;
//! use powermgmt::regulator::{LinkRegulator, RegulatorAction};
//! use powermgmt::transition::TransitionModel;
//! use photonics::bitrate::{RateLadder, RateLevel};
//!
//! let mut reg = LinkRegulator::new(
//!     DpmPolicy::power_bandwidth(),
//!     RateLadder::paper(),
//!     TransitionModel::paper(),
//! );
//! // An idle window scales the link down one level, 65 dark cycles.
//! assert_eq!(
//!     reg.observe(0.1, 0.0),
//!     RegulatorAction::Retune { level: RateLevel(1), penalty: 65 }
//! );
//! ```

pub mod dls;
pub mod energy;
pub mod policy;
pub mod regulator;
pub mod transition;

pub use policy::{DpmPolicy, ScaleDecision};
pub use regulator::{LinkRegulator, RegulatorAction};
pub use transition::TransitionModel;
