//! Randomized tests of the router: no flit is lost or duplicated, per-packet
//! flit order is preserved, and every packet reaches the output port its
//! destination routes to.
//!
//! Cases are generated from fixed-seed `desim::rng` streams (no external
//! property-testing crate — the build runs offline), so every failure
//! reproduces exactly.

use desim::rng::Pcg32;
use router::flit::{NodeId, PacketId};
use router::inject::FlitInjector;
use router::packet::Packet;
use router::routing::{PortId, TableRoute};
use router::{Router, RouterConfig};
use std::collections::HashMap;

/// Drives a router with per-port injectors until everything drains (or a
/// generous cycle cap), returning the traversal log.
fn drive(
    ports: u16,
    vcs: u8,
    buf_depth: usize,
    downstream: u32,
    packets: Vec<Packet>,
) -> Vec<(u64, PortId, PacketId, u16, bool)> {
    let table: Vec<PortId> = (0..ports).map(PortId).collect();
    let mut router = Router::new(
        RouterConfig {
            in_ports: ports,
            out_ports: ports,
            vcs,
            buf_depth,
            downstream_depth: downstream,
        },
        Box::new(TableRoute::new(table)),
    );
    let mut injectors: Vec<FlitInjector> =
        (0..ports).map(|p| FlitInjector::new(PortId(p))).collect();
    let total_flits: u64 = packets.iter().map(|p| p.flits as u64).sum();
    for p in &packets {
        injectors[p.src.index() % ports as usize].enqueue(*p);
    }
    let mut log = Vec::new();
    let mut seen = 0u64;
    let mut now = 0u64;
    // Credits return one cycle after traversal (sink consumers).
    let mut pending_credits: Vec<(u64, PortId, u8)> = Vec::new();
    while seen < total_flits && now < 200_000 {
        let mut i = 0;
        while i < pending_credits.len() {
            if pending_credits[i].0 <= now {
                let (_, port, vc) = pending_credits.swap_remove(i);
                router.credit(port, vc);
            } else {
                i += 1;
            }
        }
        for inj in &mut injectors {
            inj.tick(&mut router);
        }
        for t in router.step(now) {
            pending_credits.push((now + 1, t.out_port, t.out_vc));
            log.push((
                now,
                t.out_port,
                t.flit.packet,
                t.flit.seq,
                t.flit.kind.is_tail(),
            ));
            seen += 1;
        }
        now += 1;
    }
    log
}

#[test]
fn random_traffic_conserves_and_orders_flits() {
    let mut rng = Pcg32::stream(0x0407_7E57, 0);
    for _case in 0..24 {
        let count = 1 + rng.below(39) as usize;
        let packets: Vec<Packet> = (0..count)
            .map(|i| Packet {
                id: PacketId(i as u64),
                src: NodeId(rng.below(4)),
                dst: NodeId(rng.below(4)),
                flits: rng.range(1, 5) as u16,
                injected_at: 0,
                labelled: false,
            })
            .collect();
        let vcs = rng.range(1, 3) as u8;
        let buf_depth = rng.range(1, 3) as usize;
        let downstream = rng.range(1, 7);
        let total_flits: u64 = packets.iter().map(|p| p.flits as u64).sum();
        let log = drive(4, vcs, buf_depth, downstream, packets.clone());
        // Conservation: every flit traverses exactly once.
        assert_eq!(log.len() as u64, total_flits, "flits lost or stuck");
        // Per-packet: in-order seqs, single output port, tail last.
        let mut per_packet: HashMap<PacketId, Vec<(u64, PortId, u16, bool)>> = HashMap::new();
        for &(t, port, id, seq, tail) in &log {
            per_packet.entry(id).or_default().push((t, port, seq, tail));
        }
        assert_eq!(per_packet.len(), packets.len());
        for p in &packets {
            let entries = &per_packet[&p.id];
            assert_eq!(entries.len(), p.flits as usize);
            // Flit seq strictly increasing in traversal order.
            for w in entries.windows(2) {
                assert!(w[0].2 < w[1].2, "packet {:?} out of order", p.id);
                assert!(w[0].0 <= w[1].0, "time went backwards");
            }
            // All flits exit through the routed port.
            let expect = PortId(p.dst.0 as u16);
            assert!(entries.iter().all(|e| e.1 == expect));
            // Tail is the final flit.
            assert!(entries.last().unwrap().3, "tail not last");
            assert!(entries[..entries.len() - 1].iter().all(|e| !e.3));
        }
    }
}

/// A router is work-conserving at an uncontended output: a single flow
/// sustains one flit per cycle once the pipeline fills.
#[test]
fn single_flow_throughput_is_full_rate() {
    let mut rng = Pcg32::stream(0x51_4A7E, 0);
    for _case in 0..8 {
        let flits = rng.range(8, 39) as u16;
        let packets = vec![Packet {
            id: PacketId(0),
            src: NodeId(0),
            dst: NodeId(1),
            flits,
            injected_at: 0,
            labelled: false,
        }];
        let log = drive(4, 2, 4, 64, packets);
        assert_eq!(log.len(), flits as usize);
        // After the head's RC+VA, flits move back-to-back: the span from
        // first to last traversal is exactly flits-1 cycles.
        let first = log.first().unwrap().0;
        let last = log.last().unwrap().0;
        assert_eq!(last - first, (flits - 1) as u64, "bubbles in the pipeline");
    }
}
