//! Equivalence property tests: the word-parallel arbiters against the
//! retained slice-based oracles.
//!
//! The router's hot path arbitrates over packed `u64` request words
//! (`RoundRobinArbiter::arbitrate_words`, `MatrixArbiter::arbitrate_words`);
//! the original boolean-slice implementations survive as executable
//! specifications (`Arbiter::arbitrate` on `RoundRobinArbiter`, and
//! `SliceMatrixArbiter`). These tests drive both forms through randomized
//! request sets and long grant histories — the priority state (rotor /
//! matrix) evolves with every grant, so a single mismatched winner anywhere
//! in the history cascades and fails loudly.
//!
//! Cases are generated from fixed-seed `desim::rng` streams (no external
//! property-testing crate — the build runs offline), so every failure
//! reproduces exactly.

use desim::rng::Pcg32;
use router::arbiter::{Arbiter, MatrixArbiter, RoundRobinArbiter, SliceMatrixArbiter};
use router::words::pack;

/// Arbiter widths covering sub-word, exact-word and multi-word sets, with
/// both sides of every 64-bit boundary.
const WIDTHS: &[usize] = &[1, 2, 3, 63, 64, 65, 127, 128, 129, 190, 256];

/// Draws a request slice with roughly `density` fraction of bits set.
fn random_requests(rng: &mut Pcg32, n: usize, density: f64) -> Vec<bool> {
    (0..n).map(|_| rng.bernoulli(density)).collect()
}

#[test]
fn round_robin_words_match_slice_oracle_over_histories() {
    for &n in WIDTHS {
        for (stream, density) in [(0, 0.02), (1, 0.2), (2, 0.6), (3, 0.97)] {
            let mut rng = Pcg32::stream(0xA2B1_7E57 + n as u64, stream);
            let mut word_arb = RoundRobinArbiter::new(n);
            let mut oracle = RoundRobinArbiter::new(n);
            for step in 0..400 {
                let reqs = random_requests(&mut rng, n, density);
                let words = pack(&reqs);
                let got = word_arb.arbitrate_words(&words);
                let want = oracle.arbitrate(&reqs);
                assert_eq!(
                    got, want,
                    "round-robin divergence at n={n} density={density} step={step}"
                );
            }
        }
    }
}

#[test]
fn matrix_words_match_slice_oracle_over_histories() {
    for &n in WIDTHS {
        for (stream, density) in [(0, 0.02), (1, 0.2), (2, 0.6), (3, 0.97)] {
            let mut rng = Pcg32::stream(0x3A70_0000_u64 + n as u64, stream);
            let mut word_arb = MatrixArbiter::new(n);
            let mut oracle = SliceMatrixArbiter::new(n);
            for step in 0..250 {
                let reqs = random_requests(&mut rng, n, density);
                let words = pack(&reqs);
                let got = word_arb.arbitrate_words(&words);
                let want = oracle.arbitrate(&reqs);
                assert_eq!(
                    got, want,
                    "matrix divergence at n={n} density={density} step={step}"
                );
            }
        }
    }
}

#[test]
fn empty_and_full_request_sets_agree() {
    for &n in WIDTHS {
        let mut word_rr = RoundRobinArbiter::new(n);
        let mut oracle_rr = RoundRobinArbiter::new(n);
        let mut word_mx = MatrixArbiter::new(n);
        let mut oracle_mx = SliceMatrixArbiter::new(n);
        let empty = vec![false; n];
        let full = vec![true; n];
        // Alternate empty/full for 3·n rounds: every rotor position and a
        // full matrix rotation get exercised, with idle rounds interleaved
        // (which must not advance priority state).
        for round in 0..3 * n {
            let reqs = if round % 2 == 0 { &full } else { &empty };
            let words = pack(reqs);
            assert_eq!(
                word_rr.arbitrate_words(&words),
                oracle_rr.arbitrate(reqs),
                "round-robin n={n} round={round}"
            );
            assert_eq!(
                word_mx.arbitrate_words(&words),
                oracle_mx.arbitrate(reqs),
                "matrix n={n} round={round}"
            );
        }
    }
}

#[test]
fn single_bit_at_word_boundaries_agrees() {
    // A lone requester at each boundary-adjacent position, arbitrated from
    // every possible rotor position: the wrapped masked scan must find the
    // single set bit wherever the rotor starts.
    for &n in &[64usize, 65, 128, 129, 190] {
        let boundary_bits: Vec<usize> = [0usize, 1, 62, 63, 64, 65, 126, 127, 128, 129, n - 1]
            .iter()
            .copied()
            .filter(|&b| b < n)
            .collect();
        for &bit in &boundary_bits {
            let mut reqs = vec![false; n];
            reqs[bit] = true;
            let words = pack(&reqs);
            for start in boundary_bits.iter().copied() {
                let mut word_arb = RoundRobinArbiter::new(n);
                let mut oracle = RoundRobinArbiter::new(n);
                // Park both rotors at `start + 1` via a granted request.
                let mut park = vec![false; n];
                park[start] = true;
                let park_words = pack(&park);
                assert_eq!(word_arb.arbitrate_words(&park_words), Some(start));
                assert_eq!(oracle.arbitrate(&park), Some(start));
                assert_eq!(
                    word_arb.arbitrate_words(&words),
                    oracle.arbitrate(&reqs),
                    "n={n} bit={bit} rotor after {start}"
                );
                assert_eq!(word_arb.arbitrate_words(&words), Some(bit));
            }
        }
    }
}

#[test]
fn rotor_snapshot_roundtrip_preserves_equivalence() {
    // Save/load the word arbiter mid-history; the restored arbiter must
    // continue to track the (never-serialized) oracle exactly.
    let n = 129;
    let mut rng = Pcg32::stream(0x00C0_FFEE, 7);
    let mut word_arb = RoundRobinArbiter::new(n);
    let mut oracle = RoundRobinArbiter::new(n);
    for _ in 0..100 {
        let reqs = random_requests(&mut rng, n, 0.3);
        assert_eq!(
            word_arb.arbitrate_words(&pack(&reqs)),
            oracle.arbitrate(&reqs)
        );
    }
    let mut w = desim::snap::SnapWriter::new();
    word_arb.save_state(&mut w);
    let bytes = w.into_bytes();
    let mut restored = RoundRobinArbiter::new(n);
    let mut r = desim::snap::SnapReader::new(&bytes);
    restored.load_state(&mut r).unwrap();
    for _ in 0..100 {
        let reqs = random_requests(&mut rng, n, 0.3);
        assert_eq!(
            restored.arbitrate_words(&pack(&reqs)),
            oracle.arbitrate(&reqs)
        );
    }
}
