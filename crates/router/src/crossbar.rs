//! The crossbar switch: per-cycle input→output connection bookkeeping.
//!
//! The crossbar itself is combinational; what the model enforces is the
//! structural hazard — at most one input drives each output and each input
//! drives at most one output per cycle. Switch allocation (SA) decides the
//! winners; the crossbar double-checks them.
//!
//! Port occupancy is tracked as packed `u64` busy masks ([`crate::words`]),
//! matching the router's bitset hot path: the hazard check is one bit test
//! and [`Crossbar::connections`] is a popcount instead of an O(ports) scan.

use crate::routing::PortId;
use crate::words;

/// One cycle's crossbar schedule.
#[derive(Debug, Clone)]
pub struct Crossbar {
    inputs: usize,
    outputs: usize,
    /// `out_for_in[i]` — the output input `i` drives this cycle.
    out_for_in: Vec<Option<PortId>>,
    /// `in_for_out[o]` — the input driving output `o` this cycle.
    in_for_out: Vec<Option<PortId>>,
    /// Inputs connected this cycle, one bit per port.
    in_busy: Vec<u64>,
    /// Outputs driven this cycle, one bit per port.
    out_busy: Vec<u64>,
}

impl Crossbar {
    /// Creates an `inputs × outputs` crossbar.
    pub fn new(inputs: usize, outputs: usize) -> Self {
        assert!(inputs > 0 && outputs > 0);
        Self {
            inputs,
            outputs,
            out_for_in: vec![None; inputs],
            in_for_out: vec![None; outputs],
            in_busy: vec![0; words::words_for(inputs)],
            out_busy: vec![0; words::words_for(outputs)],
        }
    }

    /// Number of input ports.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of output ports.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// Connects input `i` to output `o` for this cycle.
    ///
    /// # Panics
    /// On a structural hazard (either side already connected) — SA must
    /// never double-grant.
    pub fn connect(&mut self, i: PortId, o: PortId) {
        assert!(
            !words::test(&self.in_busy, i.index()),
            "input {i} already connected this cycle"
        );
        assert!(
            !words::test(&self.out_busy, o.index()),
            "output {o} already driven this cycle"
        );
        words::set(&mut self.in_busy, i.index());
        words::set(&mut self.out_busy, o.index());
        self.out_for_in[i.index()] = Some(o);
        self.in_for_out[o.index()] = Some(i);
    }

    /// The output input `i` drives, if any.
    pub fn output_of(&self, i: PortId) -> Option<PortId> {
        self.out_for_in[i.index()]
    }

    /// The input driving output `o`, if any.
    pub fn input_of(&self, o: PortId) -> Option<PortId> {
        self.in_for_out[o.index()]
    }

    /// Connections made this cycle.
    pub fn connections(&self) -> usize {
        words::count(&self.out_busy) as usize
    }

    /// Clears the schedule for the next cycle.
    pub fn clear(&mut self) {
        self.out_for_in.iter_mut().for_each(|x| *x = None);
        self.in_for_out.iter_mut().for_each(|x| *x = None);
        self.in_busy.iter_mut().for_each(|w| *w = 0);
        self.out_busy.iter_mut().for_each(|w| *w = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_and_query() {
        let mut x = Crossbar::new(4, 4);
        x.connect(PortId(0), PortId(2));
        x.connect(PortId(1), PortId(3));
        assert_eq!(x.output_of(PortId(0)), Some(PortId(2)));
        assert_eq!(x.input_of(PortId(3)), Some(PortId(1)));
        assert_eq!(x.connections(), 2);
        assert_eq!(x.inputs(), 4);
        assert_eq!(x.outputs(), 4);
    }

    #[test]
    fn clear_resets() {
        let mut x = Crossbar::new(2, 2);
        x.connect(PortId(0), PortId(1));
        x.clear();
        assert_eq!(x.connections(), 0);
        assert_eq!(x.output_of(PortId(0)), None);
        // Reconnecting after clear is fine.
        x.connect(PortId(0), PortId(1));
    }

    #[test]
    #[should_panic(expected = "already driven")]
    fn double_drive_panics() {
        let mut x = Crossbar::new(2, 2);
        x.connect(PortId(0), PortId(1));
        x.connect(PortId(1), PortId(1));
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_input_panics() {
        let mut x = Crossbar::new(2, 2);
        x.connect(PortId(0), PortId(0));
        x.connect(PortId(0), PortId(1));
    }

    #[test]
    fn rectangular_crossbar() {
        let mut x = Crossbar::new(2, 5);
        x.connect(PortId(1), PortId(4));
        assert_eq!(x.input_of(PortId(4)), Some(PortId(1)));
    }

    #[test]
    fn busy_masks_span_word_boundaries() {
        let mut x = Crossbar::new(130, 130);
        for p in [0u16, 63, 64, 129] {
            x.connect(PortId(p), PortId(129 - p));
        }
        assert_eq!(x.connections(), 4);
        assert_eq!(x.output_of(PortId(129)), Some(PortId(0)));
    }
}
