//! Per-input virtual-channel state machines.
//!
//! Flits from different nodes interleave in the electrical domain through
//! virtual channels (§2.1). Each input VC owns a flit buffer and walks the
//! per-packet pipeline: Idle → Routing (RC) → WaitingVc (VA) → Active
//! (SA/ST per flit) → Idle on tail traversal.
//!
//! Two representations coexist:
//!
//! * [`VcState`]/[`InputVc`] — the enum form, which defines the snapshot
//!   byte format (tags 0–3) and is what checkpoints serialize;
//! * [`VcArena`] — a struct-of-arrays arena holding the same state as
//!   parallel flat vectors indexed by requester id `r = in_port · V + in_vc`,
//!   which is what the router's VA/SA/ST passes actually walk. The arena's
//!   [`VcArena::state`]/[`VcArena::set_state`] bridge to the enum form so
//!   snapshots stay byte-identical to the pre-arena layout.

use crate::buffer::FlitBuffer;
use crate::routing::PortId;
use desim::Cycle;

/// Pipeline state of one input VC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcState {
    /// No packet in flight.
    Idle,
    /// Route computation in progress; completes at the stored cycle.
    Routing {
        /// Cycle at which RC completes.
        done_at: Cycle,
    },
    /// Route known; requesting an output VC each cycle.
    WaitingVc {
        /// Output port the packet will use.
        out_port: PortId,
    },
    /// Output VC held; flits bid for the switch. Bidding allowed from
    /// `active_at` (VA took one cycle).
    Active {
        /// Output port the packet uses.
        out_port: PortId,
        /// Output VC index held.
        out_vc: u8,
        /// First cycle the VC may bid in SA.
        active_at: Cycle,
    },
}

/// One input virtual channel.
#[derive(Debug, Clone)]
pub struct InputVc {
    /// Buffered flits.
    pub buffer: FlitBuffer,
    /// Pipeline state.
    pub state: VcState,
}

impl InputVc {
    /// Creates an idle VC with a buffer of `depth` flits.
    pub fn new(depth: usize) -> Self {
        Self {
            buffer: FlitBuffer::new(depth),
            state: VcState::Idle,
        }
    }

    /// True when a new flit can be accepted (buffer space).
    pub fn can_accept(&self) -> bool {
        !self.buffer.is_full()
    }

    /// The output port the current packet is routed to, if RC completed.
    pub fn routed_port(&self) -> Option<PortId> {
        match self.state {
            VcState::WaitingVc { out_port } => Some(out_port),
            VcState::Active { out_port, .. } => Some(out_port),
            _ => None,
        }
    }
}

/// Discriminant of [`VcState`], stored one byte per VC in the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum VcTag {
    /// No packet in flight.
    Idle = 0,
    /// Route computation in progress (`timer` = completion cycle).
    Routing = 1,
    /// Route known (`out_port` valid); requesting an output VC.
    Waiting = 2,
    /// Output VC held (`out_port`/`out_vc` valid, `timer` = first SA cycle).
    Active = 3,
}

/// Struct-of-arrays arena over all input VCs of one router.
///
/// Fields the route loop touches (state tag, routed port, held output VC,
/// stage timer) live in parallel flat vectors so the VA/SA/ST passes walk
/// contiguous memory; the flit buffers sit in their own vector, touched
/// only on inject/pop. Indexing is by requester id `r = in_port · V + in_vc`.
#[derive(Debug)]
pub struct VcArena {
    /// Pipeline state discriminant per VC.
    pub tag: Vec<VcTag>,
    /// Routed output port; valid when `tag` is `Waiting` or `Active`.
    pub out_port: Vec<u16>,
    /// Held output VC; valid when `tag` is `Active`.
    pub out_vc: Vec<u8>,
    /// Stage timer: RC `done_at` when `Routing`, SA `active_at` when `Active`.
    pub timer: Vec<Cycle>,
    /// Flit buffers, same indexing.
    pub buffers: Vec<FlitBuffer>,
}

impl VcArena {
    /// Creates `n` idle VCs with buffers of `depth` flits.
    pub fn new(n: usize, depth: usize) -> Self {
        Self {
            tag: vec![VcTag::Idle; n],
            out_port: vec![0; n],
            out_vc: vec![0; n],
            timer: vec![0; n],
            buffers: (0..n).map(|_| FlitBuffer::new(depth)).collect(),
        }
    }

    /// Number of VCs.
    pub fn len(&self) -> usize {
        self.tag.len()
    }

    /// True if the arena holds no VCs.
    pub fn is_empty(&self) -> bool {
        self.tag.is_empty()
    }

    /// Reassembles the enum view of VC `r` (snapshot bridge).
    pub fn state(&self, r: usize) -> VcState {
        match self.tag[r] {
            VcTag::Idle => VcState::Idle,
            VcTag::Routing => VcState::Routing {
                done_at: self.timer[r],
            },
            VcTag::Waiting => VcState::WaitingVc {
                out_port: PortId(self.out_port[r]),
            },
            VcTag::Active => VcState::Active {
                out_port: PortId(self.out_port[r]),
                out_vc: self.out_vc[r],
                active_at: self.timer[r],
            },
        }
    }

    /// Scatters an enum state into the arrays for VC `r` (snapshot bridge).
    pub fn set_state(&mut self, r: usize, s: VcState) {
        match s {
            VcState::Idle => self.tag[r] = VcTag::Idle,
            VcState::Routing { done_at } => {
                self.tag[r] = VcTag::Routing;
                self.timer[r] = done_at;
            }
            VcState::WaitingVc { out_port } => {
                self.tag[r] = VcTag::Waiting;
                self.out_port[r] = out_port.0;
            }
            VcState::Active {
                out_port,
                out_vc,
                active_at,
            } => {
                self.tag[r] = VcTag::Active;
                self.out_port[r] = out_port.0;
                self.out_vc[r] = out_vc;
                self.timer[r] = active_at;
            }
        }
    }

    /// Heap bytes held by the arena (for `approx_memory_bytes`).
    pub fn approx_memory_bytes(&self) -> usize {
        use crate::flit::Flit;
        self.tag.capacity() * std::mem::size_of::<VcTag>()
            + self.out_port.capacity() * std::mem::size_of::<u16>()
            + self.out_vc.capacity()
            + self.timer.capacity() * std::mem::size_of::<Cycle>()
            + self.buffers.capacity() * std::mem::size_of::<FlitBuffer>()
            + self
                .buffers
                .iter()
                .map(|b| b.capacity() * std::mem::size_of::<Flit>())
                .sum::<usize>()
    }
}

impl desim::snap::Snap for VcState {
    fn save(&self, w: &mut desim::snap::SnapWriter) {
        match self {
            VcState::Idle => w.u8(0),
            VcState::Routing { done_at } => {
                w.u8(1);
                w.u64(*done_at);
            }
            VcState::WaitingVc { out_port } => {
                w.u8(2);
                w.u16(out_port.0);
            }
            VcState::Active {
                out_port,
                out_vc,
                active_at,
            } => {
                w.u8(3);
                w.u16(out_port.0);
                w.u8(*out_vc);
                w.u64(*active_at);
            }
        }
    }
    fn load(r: &mut desim::snap::SnapReader<'_>) -> Result<Self, desim::snap::SnapError> {
        Ok(match r.u8()? {
            0 => VcState::Idle,
            1 => VcState::Routing { done_at: r.u64()? },
            2 => VcState::WaitingVc {
                out_port: PortId(r.u16()?),
            },
            3 => VcState::Active {
                out_port: PortId(r.u16()?),
                out_vc: r.u8()?,
                active_at: r.u64()?,
            },
            b => {
                return Err(desim::snap::SnapError::Format(format!(
                    "bad VC state tag {b:#x}"
                )))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{Flit, FlitKind, NodeId, PacketId};

    fn head() -> Flit {
        Flit {
            packet: PacketId(1),
            kind: FlitKind::Head,
            src: NodeId(0),
            dst: NodeId(3),
            injected_at: 0,
            labelled: false,
            seq: 0,
        }
    }

    #[test]
    fn starts_idle_with_space() {
        let vc = InputVc::new(2);
        assert_eq!(vc.state, VcState::Idle);
        assert!(vc.can_accept());
        assert_eq!(vc.routed_port(), None);
    }

    #[test]
    fn routed_port_by_state() {
        let mut vc = InputVc::new(2);
        vc.buffer.push(head());
        vc.state = VcState::WaitingVc {
            out_port: PortId(3),
        };
        assert_eq!(vc.routed_port(), Some(PortId(3)));
        vc.state = VcState::Active {
            out_port: PortId(3),
            out_vc: 1,
            active_at: 5,
        };
        assert_eq!(vc.routed_port(), Some(PortId(3)));
        vc.state = VcState::Routing { done_at: 2 };
        assert_eq!(vc.routed_port(), None);
    }

    #[test]
    fn full_buffer_rejects() {
        let mut vc = InputVc::new(1);
        vc.buffer.push(head());
        assert!(!vc.can_accept());
    }
}
