//! Per-input virtual-channel state machines.
//!
//! Flits from different nodes interleave in the electrical domain through
//! virtual channels (§2.1). Each input VC owns a flit buffer and walks the
//! per-packet pipeline: Idle → Routing (RC) → WaitingVc (VA) → Active
//! (SA/ST per flit) → Idle on tail traversal.

use crate::buffer::FlitBuffer;
use crate::routing::PortId;
use desim::Cycle;

/// Pipeline state of one input VC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcState {
    /// No packet in flight.
    Idle,
    /// Route computation in progress; completes at the stored cycle.
    Routing {
        /// Cycle at which RC completes.
        done_at: Cycle,
    },
    /// Route known; requesting an output VC each cycle.
    WaitingVc {
        /// Output port the packet will use.
        out_port: PortId,
    },
    /// Output VC held; flits bid for the switch. Bidding allowed from
    /// `active_at` (VA took one cycle).
    Active {
        /// Output port the packet uses.
        out_port: PortId,
        /// Output VC index held.
        out_vc: u8,
        /// First cycle the VC may bid in SA.
        active_at: Cycle,
    },
}

/// One input virtual channel.
#[derive(Debug, Clone)]
pub struct InputVc {
    /// Buffered flits.
    pub buffer: FlitBuffer,
    /// Pipeline state.
    pub state: VcState,
}

impl InputVc {
    /// Creates an idle VC with a buffer of `depth` flits.
    pub fn new(depth: usize) -> Self {
        Self {
            buffer: FlitBuffer::new(depth),
            state: VcState::Idle,
        }
    }

    /// True when a new flit can be accepted (buffer space).
    pub fn can_accept(&self) -> bool {
        !self.buffer.is_full()
    }

    /// The output port the current packet is routed to, if RC completed.
    pub fn routed_port(&self) -> Option<PortId> {
        match self.state {
            VcState::WaitingVc { out_port } => Some(out_port),
            VcState::Active { out_port, .. } => Some(out_port),
            _ => None,
        }
    }
}

impl desim::snap::Snap for VcState {
    fn save(&self, w: &mut desim::snap::SnapWriter) {
        match self {
            VcState::Idle => w.u8(0),
            VcState::Routing { done_at } => {
                w.u8(1);
                w.u64(*done_at);
            }
            VcState::WaitingVc { out_port } => {
                w.u8(2);
                w.u16(out_port.0);
            }
            VcState::Active {
                out_port,
                out_vc,
                active_at,
            } => {
                w.u8(3);
                w.u16(out_port.0);
                w.u8(*out_vc);
                w.u64(*active_at);
            }
        }
    }
    fn load(r: &mut desim::snap::SnapReader<'_>) -> Result<Self, desim::snap::SnapError> {
        Ok(match r.u8()? {
            0 => VcState::Idle,
            1 => VcState::Routing { done_at: r.u64()? },
            2 => VcState::WaitingVc {
                out_port: PortId(r.u16()?),
            },
            3 => VcState::Active {
                out_port: PortId(r.u16()?),
                out_vc: r.u8()?,
                active_at: r.u64()?,
            },
            b => {
                return Err(desim::snap::SnapError::Format(format!(
                    "bad VC state tag {b:#x}"
                )))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{Flit, FlitKind, NodeId, PacketId};

    fn head() -> Flit {
        Flit {
            packet: PacketId(1),
            kind: FlitKind::Head,
            src: NodeId(0),
            dst: NodeId(3),
            injected_at: 0,
            labelled: false,
            seq: 0,
        }
    }

    #[test]
    fn starts_idle_with_space() {
        let vc = InputVc::new(2);
        assert_eq!(vc.state, VcState::Idle);
        assert!(vc.can_accept());
        assert_eq!(vc.routed_port(), None);
    }

    #[test]
    fn routed_port_by_state() {
        let mut vc = InputVc::new(2);
        vc.buffer.push(head());
        vc.state = VcState::WaitingVc {
            out_port: PortId(3),
        };
        assert_eq!(vc.routed_port(), Some(PortId(3)));
        vc.state = VcState::Active {
            out_port: PortId(3),
            out_vc: 1,
            active_at: 5,
        };
        assert_eq!(vc.routed_port(), Some(PortId(3)));
        vc.state = VcState::Routing { done_at: 2 };
        assert_eq!(vc.routed_port(), None);
    }

    #[test]
    fn full_buffer_rejects() {
        let mut vc = InputVc::new(1);
        vc.buffer.push(head());
        assert!(!vc.can_accept());
    }
}
