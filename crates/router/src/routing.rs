//! Output-port lookup (the RC pipeline stage's computation).
//!
//! The IBI is a single router per board, so routing reduces to a table
//! lookup from destination node to output port. The table form also serves
//! the bench harness's synthetic single-router experiments.

use crate::flit::NodeId;

/// A router port index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub u16);

impl PortId {
    /// Numeric index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PortId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Maps a packet's destination to an output port of this router.
pub trait RouteFunction {
    /// The output port for a packet heading to `dst`.
    fn route(&self, dst: NodeId) -> PortId;
}

/// A dense lookup table: `table[dst.index()] = port`.
#[derive(Debug, Clone)]
pub struct TableRoute {
    table: Vec<PortId>,
}

impl TableRoute {
    /// Builds a table covering destinations `0..table.len()`.
    pub fn new(table: Vec<PortId>) -> Self {
        assert!(!table.is_empty());
        Self { table }
    }

    /// Number of destinations covered.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Never true after construction.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

impl RouteFunction for TableRoute {
    fn route(&self, dst: NodeId) -> PortId {
        self.table[dst.index()]
    }
}

/// A closure-backed route function.
pub struct FnRoute<F: Fn(NodeId) -> PortId>(pub F);

impl<F: Fn(NodeId) -> PortId> RouteFunction for FnRoute<F> {
    fn route(&self, dst: NodeId) -> PortId {
        (self.0)(dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_lookup() {
        let t = TableRoute::new(vec![PortId(0), PortId(3), PortId(1)]);
        assert_eq!(t.route(NodeId(0)), PortId(0));
        assert_eq!(t.route(NodeId(1)), PortId(3));
        assert_eq!(t.route(NodeId(2)), PortId(1));
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn closure_route() {
        let r = FnRoute(|dst: NodeId| PortId((dst.0 % 4) as u16));
        assert_eq!(r.route(NodeId(6)), PortId(2));
    }

    #[test]
    fn port_display() {
        assert_eq!(PortId(2).to_string(), "p2");
        assert_eq!(PortId(2).index(), 2);
    }

    #[test]
    #[should_panic]
    fn out_of_range_destination_panics() {
        let t = TableRoute::new(vec![PortId(0)]);
        t.route(NodeId(5));
    }
}
