//! Arbiters: round-robin and matrix (least-recently-served).
//!
//! Switch allocation and VC allocation both need fair single-winner
//! arbitration among requesters. Round-robin is the classic cheap choice;
//! the matrix arbiter provides strict least-recently-served fairness
//! (Dally & Towles §18).
//!
//! Each arbiter exists in two forms sharing one priority state:
//!
//! * a **word-parallel** path ([`RoundRobinArbiter::arbitrate_words`],
//!   [`MatrixArbiter::arbitrate_words`]) over packed `u64` request words
//!   (see [`crate::words`]) — the router's hot path, scanning 64
//!   requesters per machine word with mask-rotate + `trailing_zeros`;
//! * a **slice oracle** ([`Arbiter::arbitrate`] on [`RoundRobinArbiter`],
//!   and [`SliceMatrixArbiter`]) — the original scan-from-pointer
//!   implementations, kept verbatim as executable specifications. The
//!   property suite (`tests/arbiter_props.rs`) drives both forms through
//!   randomized request sets and grant histories and asserts
//!   position-identical winners at every step.
//!
//! **Why masked `trailing_zeros` == scan-from-pointer.** The oracle visits
//! positions `next, next+1, …, n-1, 0, …, next-1` and grants the first
//! requester. The word path partitions that same cyclic sequence into (a)
//! the word holding `next` masked to bits `>= next`, (b) the higher words
//! in order, (c) the lower words in order, (d) the `next` word masked to
//! bits `< next` — each segment scanned by `trailing_zeros`, i.e. lowest
//! index first, which within a segment coincides with cyclic order. The
//! first non-empty segment therefore yields exactly the oracle's winner,
//! provided no bit `>= n` is ever set (the callers' invariant).

use crate::words;

/// A single-winner arbiter over `n` requesters.
pub trait Arbiter {
    /// Number of requesters.
    fn len(&self) -> usize;
    /// True if `len() == 0`.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Picks a winner among `requests` (true = requesting) and updates
    /// internal priority state. Returns `None` when nobody requests.
    fn arbitrate(&mut self, requests: &[bool]) -> Option<usize>;
}

/// Rotating-priority round-robin arbiter.
#[derive(Debug, Clone)]
pub struct RoundRobinArbiter {
    n: usize,
    /// Index with highest priority next round.
    next: usize,
}

impl RoundRobinArbiter {
    /// Creates an arbiter over `n` requesters.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        Self { n, next: 0 }
    }

    /// Word-parallel arbitration over packed request words
    /// (`words.len() == ceil(n / 64)`, no bit `>= n` set). Winner and
    /// rotor update are position-identical to [`Arbiter::arbitrate`] on
    /// the unpacked slice — see the module docs for the argument.
    #[inline]
    pub fn arbitrate_words(&mut self, reqs: &[u64]) -> Option<usize> {
        debug_assert_eq!(reqs.len(), words::words_for(self.n));
        let sw = self.next / 64;
        let sb = (self.next % 64) as u32;
        // Segment (a): the rotor's word, bits >= next.
        let head = reqs[sw] & (u64::MAX << sb);
        let idx = if head != 0 {
            sw * 64 + head.trailing_zeros() as usize
        } else if let Some(wi) = (sw + 1..reqs.len()).find(|&wi| reqs[wi] != 0) {
            // Segment (b): higher words.
            wi * 64 + reqs[wi].trailing_zeros() as usize
        } else if let Some(wi) = (0..sw).find(|&wi| reqs[wi] != 0) {
            // Segment (c): wrapped lower words.
            wi * 64 + reqs[wi].trailing_zeros() as usize
        } else {
            // Segment (d): the rotor's word, bits < next.
            let tail = reqs[sw] & !(u64::MAX << sb);
            if tail == 0 {
                return None;
            }
            sw * 64 + tail.trailing_zeros() as usize
        };
        debug_assert!(idx < self.n, "request bit {idx} beyond arbiter width");
        self.next = (idx + 1) % self.n;
        Some(idx)
    }

    /// Serializes the rotor position (`n` is config-derived).
    pub fn save_state(&self, w: &mut desim::snap::SnapWriter) {
        w.usize(self.next);
    }

    /// Overlays a checkpointed rotor position.
    pub fn load_state(
        &mut self,
        r: &mut desim::snap::SnapReader<'_>,
    ) -> Result<(), desim::snap::SnapError> {
        let next = r.usize()?;
        if next >= self.n {
            return Err(desim::snap::SnapError::Mismatch(format!(
                "arbiter rotor {next} out of range {}",
                self.n
            )));
        }
        self.next = next;
        Ok(())
    }
}

impl Arbiter for RoundRobinArbiter {
    fn len(&self) -> usize {
        self.n
    }

    /// The slice oracle: linear scan from the rotor. Retained as the
    /// executable specification for [`RoundRobinArbiter::arbitrate_words`].
    fn arbitrate(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.n);
        for i in 0..self.n {
            let idx = (self.next + i) % self.n;
            if requests[idx] {
                self.next = (idx + 1) % self.n;
                return Some(idx);
            }
        }
        None
    }
}

/// Matrix arbiter: grants the requester that least recently won.
///
/// The priority matrix is packed row-major into `u64` words: bit `j` of
/// row `i` set means `i` beats `j`. A requester wins when no other
/// requester beats it, checked one word (64 opponents) at a time.
#[derive(Debug, Clone)]
pub struct MatrixArbiter {
    n: usize,
    /// Words per row (= `ceil(n / 64)`).
    row_words: usize,
    /// `prio[i · row_words + w]` — opponents `i` beats, row-major packed.
    prio: Vec<u64>,
}

impl MatrixArbiter {
    /// Creates an arbiter over `n` requesters; initial priority is by index.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        let row_words = words::words_for(n);
        let mut prio = vec![0u64; n * row_words];
        for i in 0..n {
            let row = &mut prio[i * row_words..(i + 1) * row_words];
            for j in i + 1..n {
                words::set(row, j);
            }
        }
        Self { n, row_words, prio }
    }

    /// Number of requesters.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Never true after construction.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Word-parallel arbitration over packed request words
    /// (`reqs.len() == ceil(n / 64)`, no bit `>= n` set). Winner and
    /// priority update are identical to [`SliceMatrixArbiter`]: requester
    /// `i` wins iff it requests and every other requester `j` has
    /// `prio[i][j]` — i.e. `reqs & !row_i ⊆ {i}`, one word at a time.
    pub fn arbitrate_words(&mut self, reqs: &[u64]) -> Option<usize> {
        debug_assert_eq!(reqs.len(), self.row_words);
        let mut winner = None;
        'candidates: for (wi, &w) in reqs.iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                let i = wi * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                debug_assert!(i < self.n, "request bit {i} beyond arbiter width");
                let row = &self.prio[i * self.row_words..(i + 1) * self.row_words];
                let unbeaten = (0..self.row_words).all(|rw| {
                    let mut conflict = reqs[rw] & !row[rw];
                    if rw == wi {
                        conflict &= !(1u64 << (i % 64));
                    }
                    conflict == 0
                });
                if unbeaten {
                    winner = Some(i);
                    break 'candidates;
                }
            }
        }
        let i = winner?;
        // Winner drops below everyone else: its row clears, and every
        // other row gains the winner's column bit.
        for w in &mut self.prio[i * self.row_words..(i + 1) * self.row_words] {
            *w = 0;
        }
        let (col_word, col_bit) = (i / 64, 1u64 << (i % 64));
        for j in 0..self.n {
            if j != i {
                self.prio[j * self.row_words + col_word] |= col_bit;
            }
        }
        Some(i)
    }
}

/// The original boolean-matrix arbiter, retained verbatim as the test
/// oracle for [`MatrixArbiter`].
#[derive(Debug, Clone)]
pub struct SliceMatrixArbiter {
    n: usize,
    /// `prio[i][j]` — true if `i` beats `j`.
    prio: Vec<Vec<bool>>,
}

impl SliceMatrixArbiter {
    /// Creates an arbiter over `n` requesters; initial priority is by index.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        let prio = (0..n).map(|i| (0..n).map(|j| i < j).collect()).collect();
        Self { n, prio }
    }
}

impl Arbiter for SliceMatrixArbiter {
    fn len(&self) -> usize {
        self.n
    }

    fn arbitrate(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.n);
        let winner = (0..self.n).find(|&i| {
            requests[i] && (0..self.n).all(|j| j == i || !requests[j] || self.prio[i][j])
        })?;
        // Winner drops below everyone else.
        for j in 0..self.n {
            if j != winner {
                self.prio[winner][j] = false;
                self.prio[j][winner] = true;
            }
        }
        Some(winner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::words::pack;

    #[test]
    fn round_robin_rotates() {
        let mut a = RoundRobinArbiter::new(3);
        let all = [true, true, true];
        assert_eq!(a.arbitrate(&all), Some(0));
        assert_eq!(a.arbitrate(&all), Some(1));
        assert_eq!(a.arbitrate(&all), Some(2));
        assert_eq!(a.arbitrate(&all), Some(0));
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    fn round_robin_words_rotate() {
        let mut a = RoundRobinArbiter::new(3);
        let all = pack(&[true, true, true]);
        assert_eq!(a.arbitrate_words(&all), Some(0));
        assert_eq!(a.arbitrate_words(&all), Some(1));
        assert_eq!(a.arbitrate_words(&all), Some(2));
        assert_eq!(a.arbitrate_words(&all), Some(0));
    }

    #[test]
    fn round_robin_skips_idle() {
        let mut a = RoundRobinArbiter::new(4);
        assert_eq!(a.arbitrate(&[false, false, true, false]), Some(2));
        // Priority moved past 2.
        assert_eq!(a.arbitrate(&[true, false, true, false]), Some(0));
    }

    #[test]
    fn round_robin_words_wrap_across_word_boundaries() {
        // 130 requesters: three words. Park the rotor at 129 (last bit),
        // then request only bit 1 — the wrapped scan must find it.
        let mut a = RoundRobinArbiter::new(130);
        let mut reqs = vec![0u64; 3];
        crate::words::set(&mut reqs, 128);
        assert_eq!(a.arbitrate_words(&reqs), Some(128));
        crate::words::set(&mut reqs, 129);
        crate::words::clear(&mut reqs, 128);
        assert_eq!(a.arbitrate_words(&reqs), Some(129));
        // Rotor is now 0 (wrapped).
        crate::words::clear(&mut reqs, 129);
        crate::words::set(&mut reqs, 1);
        assert_eq!(a.arbitrate_words(&reqs), Some(1));
        // Rotor 2; a bit below it wraps the whole way round.
        crate::words::clear(&mut reqs, 1);
        crate::words::set(&mut reqs, 0);
        assert_eq!(a.arbitrate_words(&reqs), Some(0));
    }

    #[test]
    fn no_requests_no_winner() {
        let mut a = RoundRobinArbiter::new(2);
        assert_eq!(a.arbitrate(&[false, false]), None);
        assert_eq!(a.arbitrate_words(&[0]), None);
        let mut m = MatrixArbiter::new(2);
        assert_eq!(m.arbitrate_words(&[0]), None);
        let mut s = SliceMatrixArbiter::new(2);
        assert_eq!(s.arbitrate(&[false, false]), None);
    }

    #[test]
    fn matrix_is_least_recently_served() {
        let mut a = MatrixArbiter::new(3);
        let all = pack(&[true, true, true]);
        let w1 = a.arbitrate_words(&all).unwrap();
        let w2 = a.arbitrate_words(&all).unwrap();
        let w3 = a.arbitrate_words(&all).unwrap();
        // All three get served once before anyone repeats.
        let mut ws = vec![w1, w2, w3];
        ws.sort_unstable();
        assert_eq!(ws, vec![0, 1, 2]);
        // The first winner is now the least recent again after the others.
        assert_eq!(a.arbitrate_words(&all), Some(w1));
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    fn matrix_sole_requester_wins() {
        let mut a = MatrixArbiter::new(4);
        a.arbitrate_words(&pack(&[true, true, true, true]));
        assert_eq!(
            a.arbitrate_words(&pack(&[false, false, false, true])),
            Some(3)
        );
    }

    #[test]
    fn fairness_under_persistent_load() {
        // Both arbiters must serve every requester equally often.
        let mut rr = RoundRobinArbiter::new(4);
        let mut mx = MatrixArbiter::new(4);
        let mut rr_counts = [0u32; 4];
        let mut mx_counts = [0u32; 4];
        let all = pack(&[true; 4]);
        for _ in 0..400 {
            rr_counts[rr.arbitrate_words(&all).unwrap()] += 1;
            mx_counts[mx.arbitrate_words(&all).unwrap()] += 1;
        }
        assert!(rr_counts.iter().all(|&c| c == 100), "{rr_counts:?}");
        assert!(mx_counts.iter().all(|&c| c == 100), "{mx_counts:?}");
    }
}
