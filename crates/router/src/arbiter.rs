//! Arbiters: round-robin and matrix (least-recently-served).
//!
//! Switch allocation and VC allocation both need fair single-winner
//! arbitration among requesters. Round-robin is the classic cheap choice;
//! the matrix arbiter provides strict least-recently-served fairness
//! (Dally & Towles §18).

/// A single-winner arbiter over `n` requesters.
pub trait Arbiter {
    /// Number of requesters.
    fn len(&self) -> usize;
    /// True if `len() == 0`.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Picks a winner among `requests` (true = requesting) and updates
    /// internal priority state. Returns `None` when nobody requests.
    fn arbitrate(&mut self, requests: &[bool]) -> Option<usize>;
}

/// Rotating-priority round-robin arbiter.
#[derive(Debug, Clone)]
pub struct RoundRobinArbiter {
    n: usize,
    /// Index with highest priority next round.
    next: usize,
}

impl RoundRobinArbiter {
    /// Creates an arbiter over `n` requesters.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        Self { n, next: 0 }
    }

    /// Serializes the rotor position (`n` is config-derived).
    pub fn save_state(&self, w: &mut desim::snap::SnapWriter) {
        w.usize(self.next);
    }

    /// Overlays a checkpointed rotor position.
    pub fn load_state(
        &mut self,
        r: &mut desim::snap::SnapReader<'_>,
    ) -> Result<(), desim::snap::SnapError> {
        let next = r.usize()?;
        if next >= self.n {
            return Err(desim::snap::SnapError::Mismatch(format!(
                "arbiter rotor {next} out of range {}",
                self.n
            )));
        }
        self.next = next;
        Ok(())
    }
}

impl Arbiter for RoundRobinArbiter {
    fn len(&self) -> usize {
        self.n
    }

    fn arbitrate(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.n);
        for i in 0..self.n {
            let idx = (self.next + i) % self.n;
            if requests[idx] {
                self.next = (idx + 1) % self.n;
                return Some(idx);
            }
        }
        None
    }
}

/// Matrix arbiter: grants the requester that least recently won.
#[derive(Debug, Clone)]
pub struct MatrixArbiter {
    n: usize,
    /// `prio[i][j]` — true if `i` beats `j`.
    prio: Vec<Vec<bool>>,
}

impl MatrixArbiter {
    /// Creates an arbiter over `n` requesters; initial priority is by index.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        let prio = (0..n).map(|i| (0..n).map(|j| i < j).collect()).collect();
        Self { n, prio }
    }
}

impl Arbiter for MatrixArbiter {
    fn len(&self) -> usize {
        self.n
    }

    fn arbitrate(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.n);
        let winner = (0..self.n).find(|&i| {
            requests[i] && (0..self.n).all(|j| j == i || !requests[j] || self.prio[i][j])
        })?;
        // Winner drops below everyone else.
        for j in 0..self.n {
            if j != winner {
                self.prio[winner][j] = false;
                self.prio[j][winner] = true;
            }
        }
        Some(winner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_rotates() {
        let mut a = RoundRobinArbiter::new(3);
        let all = [true, true, true];
        assert_eq!(a.arbitrate(&all), Some(0));
        assert_eq!(a.arbitrate(&all), Some(1));
        assert_eq!(a.arbitrate(&all), Some(2));
        assert_eq!(a.arbitrate(&all), Some(0));
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    fn round_robin_skips_idle() {
        let mut a = RoundRobinArbiter::new(4);
        assert_eq!(a.arbitrate(&[false, false, true, false]), Some(2));
        // Priority moved past 2.
        assert_eq!(a.arbitrate(&[true, false, true, false]), Some(0));
    }

    #[test]
    fn no_requests_no_winner() {
        let mut a = RoundRobinArbiter::new(2);
        assert_eq!(a.arbitrate(&[false, false]), None);
        let mut m = MatrixArbiter::new(2);
        assert_eq!(m.arbitrate(&[false, false]), None);
    }

    #[test]
    fn matrix_is_least_recently_served() {
        let mut a = MatrixArbiter::new(3);
        let all = [true, true, true];
        let w1 = a.arbitrate(&all).unwrap();
        let w2 = a.arbitrate(&all).unwrap();
        let w3 = a.arbitrate(&all).unwrap();
        // All three get served once before anyone repeats.
        let mut ws = vec![w1, w2, w3];
        ws.sort_unstable();
        assert_eq!(ws, vec![0, 1, 2]);
        // The first winner is now the least recent again after the others.
        assert_eq!(a.arbitrate(&all), Some(w1));
    }

    #[test]
    fn matrix_sole_requester_wins() {
        let mut a = MatrixArbiter::new(4);
        a.arbitrate(&[true, true, true, true]);
        assert_eq!(a.arbitrate(&[false, false, false, true]), Some(3));
    }

    #[test]
    fn fairness_under_persistent_load() {
        // Both arbiters must serve every requester equally often.
        let mut rr = RoundRobinArbiter::new(4);
        let mut mx = MatrixArbiter::new(4);
        let mut rr_counts = [0u32; 4];
        let mut mx_counts = [0u32; 4];
        let all = [true; 4];
        for _ in 0..400 {
            rr_counts[rr.arbitrate(&all).unwrap()] += 1;
            mx_counts[mx.arbitrate(&all).unwrap()] += 1;
        }
        assert!(rr_counts.iter().all(|&c| c == 100), "{rr_counts:?}");
        assert!(mx_counts.iter().all(|&c| c == 100), "{mx_counts:?}");
    }
}
