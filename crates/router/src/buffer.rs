//! Bounded flit FIFOs.

use crate::flit::Flit;
use std::collections::VecDeque;

/// A bounded FIFO of flits — one per virtual channel.
#[derive(Debug, Clone)]
pub struct FlitBuffer {
    fifo: VecDeque<Flit>,
    capacity: usize,
    /// High-water mark, for buffer-utilization statistics.
    peak: usize,
}

impl FlitBuffer {
    /// Creates a buffer holding at most `capacity` flits.
    ///
    /// # Panics
    /// If `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        Self {
            fifo: VecDeque::with_capacity(capacity),
            capacity,
            peak: 0,
        }
    }

    /// Capacity in flits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Flits currently queued.
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// True when no space remains.
    pub fn is_full(&self) -> bool {
        self.fifo.len() >= self.capacity
    }

    /// Free slots.
    pub fn space(&self) -> usize {
        self.capacity - self.fifo.len()
    }

    /// Occupancy fraction in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        self.fifo.len() as f64 / self.capacity as f64
    }

    /// Highest occupancy ever observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Pushes a flit.
    ///
    /// # Panics
    /// If full — flow control must prevent this; overflow is a protocol
    /// bug, not a droppable condition.
    pub fn push(&mut self, flit: Flit) {
        assert!(
            !self.is_full(),
            "flit buffer overflow (capacity {})",
            self.capacity
        );
        self.fifo.push_back(flit);
        self.peak = self.peak.max(self.fifo.len());
    }

    /// The flit at the head, if any.
    pub fn front(&self) -> Option<&Flit> {
        self.fifo.front()
    }

    /// Removes and returns the head flit.
    pub fn pop(&mut self) -> Option<Flit> {
        self.fifo.pop_front()
    }

    /// Serializes contents and high-water mark (capacity is config-derived).
    pub fn save_state(&self, w: &mut desim::snap::SnapWriter) {
        use desim::snap::Snap;
        self.fifo.save(w);
        w.usize(self.peak);
    }

    /// Overlays checkpointed contents onto this buffer.
    pub fn load_state(
        &mut self,
        r: &mut desim::snap::SnapReader<'_>,
    ) -> Result<(), desim::snap::SnapError> {
        use desim::snap::Snap;
        let fifo = std::collections::VecDeque::<Flit>::load(r)?;
        if fifo.len() > self.capacity {
            return Err(desim::snap::SnapError::Mismatch(format!(
                "flit buffer holds {} flits, capacity {}",
                fifo.len(),
                self.capacity
            )));
        }
        self.fifo = fifo;
        self.peak = r.usize()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, NodeId, PacketId};

    fn flit(seq: u16) -> Flit {
        Flit {
            packet: PacketId(0),
            kind: FlitKind::Body,
            src: NodeId(0),
            dst: NodeId(1),
            injected_at: 0,
            labelled: false,
            seq,
        }
    }

    #[test]
    fn fifo_order() {
        let mut b = FlitBuffer::new(4);
        b.push(flit(0));
        b.push(flit(1));
        assert_eq!(b.len(), 2);
        assert_eq!(b.front().unwrap().seq, 0);
        assert_eq!(b.pop().unwrap().seq, 0);
        assert_eq!(b.pop().unwrap().seq, 1);
        assert!(b.pop().is_none());
    }

    #[test]
    fn occupancy_and_space() {
        let mut b = FlitBuffer::new(4);
        assert_eq!(b.space(), 4);
        assert_eq!(b.occupancy(), 0.0);
        b.push(flit(0));
        b.push(flit(1));
        assert_eq!(b.space(), 2);
        assert!((b.occupancy() - 0.5).abs() < 1e-12);
        assert!(!b.is_full());
        b.push(flit(2));
        b.push(flit(3));
        assert!(b.is_full());
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut b = FlitBuffer::new(4);
        b.push(flit(0));
        b.push(flit(1));
        b.pop();
        b.pop();
        assert_eq!(b.peak(), 2);
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut b = FlitBuffer::new(1);
        b.push(flit(0));
        b.push(flit(1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        FlitBuffer::new(0);
    }
}
