//! Packets and the packetizer.

use crate::flit::{Flit, FlitKind, NodeId, PacketId};
use desim::Cycle;

/// A packet descriptor: the unit traffic generators emit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packet {
    /// Unique id.
    pub id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Number of flits (paper default: 8 flits = 64 bytes).
    pub flits: u16,
    /// Injection cycle at the source NI.
    pub injected_at: Cycle,
    /// Labelled for measurement.
    pub labelled: bool,
}

impl Packet {
    /// The `i`-th flit of the packet, computed on demand (the injectors
    /// stream flits without materialising the whole sequence).
    ///
    /// # Panics
    /// If `i >= self.flits` or the packet has no flits.
    pub fn flit_at(&self, i: u16) -> Flit {
        assert!(self.flits >= 1);
        assert!(i < self.flits);
        let kind = match (self.flits, i) {
            (1, _) => FlitKind::HeadTail,
            (_, 0) => FlitKind::Head,
            (n, i) if i == n - 1 => FlitKind::Tail,
            _ => FlitKind::Body,
        };
        Flit {
            packet: self.id,
            kind,
            src: self.src,
            dst: self.dst,
            injected_at: self.injected_at,
            labelled: self.labelled,
            seq: i,
        }
    }

    /// Splits the packet into its flit sequence.
    pub fn flitize(&self) -> Vec<Flit> {
        assert!(self.flits >= 1);
        (0..self.flits).map(|i| self.flit_at(i)).collect()
    }
}

impl desim::snap::Snap for Packet {
    fn save(&self, w: &mut desim::snap::SnapWriter) {
        w.u64(self.id.0);
        w.u32(self.src.0);
        w.u32(self.dst.0);
        w.u16(self.flits);
        w.u64(self.injected_at);
        w.bool(self.labelled);
    }
    fn load(r: &mut desim::snap::SnapReader<'_>) -> Result<Self, desim::snap::SnapError> {
        Ok(Self {
            id: PacketId(r.u64()?),
            src: NodeId(r.u32()?),
            dst: NodeId(r.u32()?),
            flits: r.u16()?,
            injected_at: r.u64()?,
            labelled: r.bool()?,
        })
    }
}

/// Allocates packet ids monotonically.
#[derive(Debug, Default, Clone)]
pub struct PacketIdAllocator {
    next: u64,
}

impl PacketIdAllocator {
    /// Creates an allocator starting at id 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a fresh id.
    pub fn allocate(&mut self) -> PacketId {
        let id = PacketId(self.next);
        self.next += 1;
        id
    }

    /// Ids handed out so far.
    pub fn allocated(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(flits: u16) -> Packet {
        Packet {
            id: PacketId(7),
            src: NodeId(1),
            dst: NodeId(2),
            flits,
            injected_at: 100,
            labelled: true,
        }
    }

    #[test]
    fn eight_flit_packet_structure() {
        let flits = pkt(8).flitize();
        assert_eq!(flits.len(), 8);
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert!(flits[1..7].iter().all(|f| f.kind == FlitKind::Body));
        assert_eq!(flits[7].kind, FlitKind::Tail);
        assert!(flits.iter().all(|f| f.packet == PacketId(7)));
        assert!(flits.iter().all(|f| f.labelled));
        assert_eq!(
            flits.iter().map(|f| f.seq).collect::<Vec<_>>(),
            (0..8).collect::<Vec<_>>()
        );
    }

    #[test]
    fn single_flit_packet_is_headtail() {
        let flits = pkt(1).flitize();
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind, FlitKind::HeadTail);
    }

    #[test]
    fn two_flit_packet_has_no_body() {
        let flits = pkt(2).flitize();
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[1].kind, FlitKind::Tail);
    }

    #[test]
    fn id_allocator_is_monotone() {
        let mut a = PacketIdAllocator::new();
        let x = a.allocate();
        let y = a.allocate();
        assert!(y > x);
        assert_eq!(a.allocated(), 2);
    }
}
