//! Packed `u64` bitset words — the router's arbitration currency.
//!
//! VA/SA arbitration operates on requester sets indexed by
//! `r = in_port · V + in_vc`. Rather than boolean slices or candidate
//! `Vec<u16>` lists, the hot path keeps each set as `ceil(n / 64)` packed
//! `u64` words and walks set members with `trailing_zeros`, so one machine
//! word carries 64 requesters and an empty set costs one load to skip.
//!
//! Invariant shared by every consumer: bits at positions `>= n` are never
//! set. All iteration helpers visit members in **ascending index order**,
//! which is exactly the `(port asc, vc asc)` canonical order the slice
//! scans used — position-identity with the oracles depends on it.

/// Words needed to hold an `n`-bit set.
#[inline]
pub fn words_for(n: usize) -> usize {
    n.div_ceil(64)
}

/// Sets bit `i`.
#[inline]
pub fn set(words: &mut [u64], i: usize) {
    words[i / 64] |= 1u64 << (i % 64);
}

/// Clears bit `i`.
#[inline]
pub fn clear(words: &mut [u64], i: usize) {
    words[i / 64] &= !(1u64 << (i % 64));
}

/// Whether bit `i` is set.
#[inline]
pub fn test(words: &[u64], i: usize) -> bool {
    words[i / 64] >> (i % 64) & 1 == 1
}

/// Whether any bit is set.
#[inline]
pub fn any(words: &[u64]) -> bool {
    words.iter().any(|&w| w != 0)
}

/// Number of set bits.
#[inline]
pub fn count(words: &[u64]) -> u64 {
    words.iter().map(|w| u64::from(w.count_ones())).sum()
}

/// Calls `f` for every set bit, ascending. The callback receives the bit
/// index; mutation of the underlying set during iteration is not visible
/// (each word is snapshotted), which is exactly the semantics the router's
/// wavefront passes need: a pass may clear bits it has visited without
/// perturbing the scan.
#[inline]
pub fn for_each_set(words: &[u64], mut f: impl FnMut(usize)) {
    for (wi, &w) in words.iter().enumerate() {
        let mut bits = w;
        while bits != 0 {
            f(wi * 64 + bits.trailing_zeros() as usize);
            bits &= bits - 1;
        }
    }
}

/// Packs a boolean slice into words (test/bridge helper, not a hot path).
pub fn pack(bools: &[bool]) -> Vec<u64> {
    let mut words = vec![0u64; words_for(bools.len())];
    for (i, &b) in bools.iter().enumerate() {
        if b {
            set(&mut words, i);
        }
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_test_clear_roundtrip() {
        let mut w = vec![0u64; words_for(130)];
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!test(&w, i));
            set(&mut w, i);
            assert!(test(&w, i));
        }
        assert_eq!(count(&w), 8);
        assert!(any(&w));
        clear(&mut w, 64);
        assert!(!test(&w, 64));
        assert_eq!(count(&w), 7);
    }

    #[test]
    fn iteration_is_ascending_and_complete() {
        let idx = [0usize, 5, 63, 64, 100, 127, 128];
        let mut w = vec![0u64; words_for(129)];
        for &i in &idx {
            set(&mut w, i);
        }
        let mut seen = Vec::new();
        for_each_set(&w, |i| seen.push(i));
        assert_eq!(seen, idx);
    }

    #[test]
    fn pack_matches_bools() {
        let bools: Vec<bool> = (0..70).map(|i| i % 3 == 0).collect();
        let w = pack(&bools);
        for (i, &b) in bools.iter().enumerate() {
            assert_eq!(test(&w, i), b);
        }
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
    }
}
