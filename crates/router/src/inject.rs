//! Flit injectors: stream packets into the IBI router one flit per cycle.
//!
//! Both entry points into a board's router — node network interfaces and
//! optical receivers — present the same problem: a backlog of whole packets
//! that must enter the router flit-by-flit, each packet pinned to one
//! virtual channel from head to tail (VC interleaving happens *between*
//! packets, not within one). [`FlitInjector`] owns that state machine for
//! one input port.

use crate::packet::Packet;
use crate::routing::PortId;
use crate::Router;
use std::collections::VecDeque;

/// Per-input-port injection state.
#[derive(Debug, Clone)]
pub struct FlitInjector {
    port: PortId,
    /// Packets awaiting injection (head of queue is in progress).
    backlog: VecDeque<Packet>,
    /// The in-progress packet; its flits are computed on demand with
    /// [`Packet::flit_at`], so starting a packet allocates nothing.
    current: Option<Packet>,
    /// Next flit index within the in-progress packet.
    next: u16,
    /// The VC the in-progress packet was assigned.
    vc: u8,
    /// Round-robin VC cursor for new packets.
    vc_cursor: u8,
    /// Total flits injected.
    injected_flits: u64,
}

impl FlitInjector {
    /// Creates an injector for router input `port`.
    pub fn new(port: PortId) -> Self {
        Self {
            port,
            backlog: VecDeque::new(),
            current: None,
            next: 0,
            vc: 0,
            vc_cursor: 0,
            injected_flits: 0,
        }
    }

    /// The router input port this injector feeds.
    pub fn port(&self) -> PortId {
        self.port
    }

    /// Queues a packet for injection.
    pub fn enqueue(&mut self, packet: Packet) {
        self.backlog.push_back(packet);
    }

    /// Packets waiting (including the one in progress).
    pub fn backlog_len(&self) -> usize {
        self.backlog.len() + usize::from(self.current.is_some())
    }

    /// True when nothing remains to inject.
    pub fn is_idle(&self) -> bool {
        self.backlog.is_empty() && self.current.is_none()
    }

    /// Total flits injected so far.
    pub fn injected_flits(&self) -> u64 {
        self.injected_flits
    }

    /// Attempts to inject one flit this cycle. Returns true if a flit
    /// entered the router.
    pub fn tick(&mut self, router: &mut Router) -> bool {
        // Start the next packet if none is in progress.
        if self.current.is_none() {
            let Some(pkt) = self.backlog.pop_front() else {
                return false;
            };
            // Pick a VC whose buffer is empty *and* idle to start a fresh
            // packet (a head flit must land at the front of an idle VC).
            let vcs = router.config().vcs;
            let mut chosen = None;
            for i in 0..vcs {
                let vc = (self.vc_cursor + i) % vcs;
                if router.input_space(self.port, vc) == router.config().buf_depth {
                    chosen = Some(vc);
                    break;
                }
            }
            let Some(vc) = chosen else {
                // No idle VC: put the packet back and retry next cycle.
                self.backlog.push_front(pkt);
                return false;
            };
            self.vc = vc;
            self.vc_cursor = (vc + 1) % vcs;
            self.current = Some(pkt);
            self.next = 0;
        }
        // Inject the next flit of the in-progress packet if space allows.
        let Some(pkt) = self.current else {
            // Unreachable: `current` was set (or refilled) above.
            return false;
        };
        if router.can_accept(self.port, self.vc) {
            router.inject(self.port, self.vc, pkt.flit_at(self.next));
            self.next += 1;
            self.injected_flits += 1;
            if self.next >= pkt.flits {
                self.current = None;
                self.next = 0;
            }
            true
        } else {
            false
        }
    }
}

impl FlitInjector {
    /// Serializes the injection state (the port is config-derived).
    pub fn save_state(&self, w: &mut desim::snap::SnapWriter) {
        use desim::snap::Snap;
        self.backlog.save(w);
        self.current.save(w);
        w.u16(self.next);
        w.u8(self.vc);
        w.u8(self.vc_cursor);
        w.u64(self.injected_flits);
    }

    /// Overlays checkpointed injection state.
    pub fn load_state(
        &mut self,
        r: &mut desim::snap::SnapReader<'_>,
    ) -> Result<(), desim::snap::SnapError> {
        use desim::snap::Snap;
        self.backlog = VecDeque::<Packet>::load(r)?;
        self.current = Option::<Packet>::load(r)?;
        self.next = r.u16()?;
        self.vc = r.u8()?;
        self.vc_cursor = r.u8()?;
        self.injected_flits = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{NodeId, PacketId};
    use crate::routing::TableRoute;
    use crate::RouterConfig;

    fn router() -> Router {
        Router::new(
            RouterConfig {
                in_ports: 1,
                out_ports: 2,
                vcs: 2,
                buf_depth: 2,
                downstream_depth: 64,
            },
            Box::new(TableRoute::new(vec![PortId(0), PortId(1)])),
        )
    }

    fn pkt(id: u64, dst: u32, flits: u16) -> Packet {
        Packet {
            id: PacketId(id),
            src: NodeId(0),
            dst: NodeId(dst),
            flits,
            injected_at: 0,
            labelled: false,
        }
    }

    #[test]
    fn injects_one_flit_per_cycle() {
        let mut r = router();
        let mut inj = FlitInjector::new(PortId(0));
        inj.enqueue(pkt(1, 1, 4));
        let mut injected = 0;
        for now in 0..40 {
            if inj.tick(&mut r) {
                injected += 1;
            }
            r.step(now);
        }
        assert_eq!(injected, 4);
        assert_eq!(inj.injected_flits(), 4);
        assert!(inj.is_idle());
    }

    #[test]
    fn packet_stays_on_one_vc() {
        let mut r = router();
        let mut inj = FlitInjector::new(PortId(0));
        inj.enqueue(pkt(1, 1, 3));
        // Never step the router: flits accumulate in one VC buffer (depth 2)
        // and injection stalls when it fills.
        assert!(inj.tick(&mut r));
        assert!(inj.tick(&mut r));
        assert!(!inj.tick(&mut r), "buffer full, must stall");
        // All flits went to the same VC.
        let vc0 = r.input_space(PortId(0), 0);
        let vc1 = r.input_space(PortId(0), 1);
        assert!(vc0 == 0 || vc1 == 0, "one VC full");
        assert!(vc0 == 2 || vc1 == 2, "other VC untouched");
    }

    #[test]
    fn consecutive_packets_use_different_vcs() {
        let mut r = router();
        let mut inj = FlitInjector::new(PortId(0));
        inj.enqueue(pkt(1, 1, 1));
        inj.enqueue(pkt(2, 1, 1));
        assert!(inj.tick(&mut r)); // packet 1 head/tail on vc A
        assert!(inj.tick(&mut r)); // packet 2 starts on vc B (A non-empty)
        assert_eq!(r.input_space(PortId(0), 0), 1);
        assert_eq!(r.input_space(PortId(0), 1), 1);
    }

    #[test]
    fn backlog_accounting() {
        let mut r = router();
        let mut inj = FlitInjector::new(PortId(0));
        assert!(inj.is_idle());
        inj.enqueue(pkt(1, 1, 2));
        inj.enqueue(pkt(2, 1, 2));
        assert_eq!(inj.backlog_len(), 2);
        inj.tick(&mut r);
        assert_eq!(inj.backlog_len(), 2, "one in progress + one waiting");
        inj.tick(&mut r);
        assert_eq!(inj.backlog_len(), 1);
        assert_eq!(inj.port(), PortId(0));
    }

    #[test]
    fn no_idle_vc_defers_new_packet() {
        let mut r = router();
        let mut inj = FlitInjector::new(PortId(0));
        // Fill both VCs with heads that never drain (router not stepped).
        inj.enqueue(pkt(1, 1, 2));
        inj.enqueue(pkt(2, 1, 2));
        inj.enqueue(pkt(3, 1, 2));
        assert!(inj.tick(&mut r)); // p1 flit 0 → vc0
        assert!(inj.tick(&mut r)); // p1 flit 1 → vc0 (complete)
        assert!(inj.tick(&mut r)); // p2 flit 0 → vc1
        assert!(inj.tick(&mut r)); // p2 flit 1 → vc1 (complete)
                                   // Both VCs occupied; p3 cannot start.
        assert!(!inj.tick(&mut r));
        assert_eq!(inj.backlog_len(), 1);
    }
}
