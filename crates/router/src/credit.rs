//! Credit-based flow control.
//!
//! Table 1: "credit-based" flow control with a single-flit buffer and
//! credits incurring a one-cycle channel delay. A [`CreditCounter`] tracks
//! the downstream space an upstream sender may use; [`CreditReturnQueue`]
//! models the one-cycle (configurable) return delay.

use desim::Cycle;
use std::collections::VecDeque;

/// Credits available toward one downstream buffer.
#[derive(Debug, Clone)]
pub struct CreditCounter {
    credits: u32,
    max: u32,
}

impl CreditCounter {
    /// Creates a counter starting full at `max` credits.
    pub fn new(max: u32) -> Self {
        assert!(max > 0);
        Self { credits: max, max }
    }

    /// Credits currently available.
    pub fn available(&self) -> u32 {
        self.credits
    }

    /// Maximum (= downstream buffer depth).
    pub fn max(&self) -> u32 {
        self.max
    }

    /// True when at least one credit is available.
    pub fn can_send(&self) -> bool {
        self.credits > 0
    }

    /// Consumes one credit (a flit departed downstream).
    ///
    /// # Panics
    /// If no credits remain — sending without credit is a protocol bug.
    pub fn consume(&mut self) {
        assert!(self.credits > 0, "credit underflow");
        self.credits -= 1;
    }

    /// Returns one credit (downstream freed a slot).
    ///
    /// # Panics
    /// If already at maximum — returning a phantom credit is a protocol bug.
    pub fn restore(&mut self) {
        assert!(self.credits < self.max, "credit overflow");
        self.credits += 1;
    }

    /// Serializes the live credit count (`max` is config-derived).
    pub fn save_state(&self, w: &mut desim::snap::SnapWriter) {
        w.u32(self.credits);
    }

    /// Overlays a checkpointed credit count.
    pub fn load_state(
        &mut self,
        r: &mut desim::snap::SnapReader<'_>,
    ) -> Result<(), desim::snap::SnapError> {
        let credits = r.u32()?;
        if credits > self.max {
            return Err(desim::snap::SnapError::Mismatch(format!(
                "{credits} credits exceed depth {}",
                self.max
            )));
        }
        self.credits = credits;
        Ok(())
    }
}

/// Credits in flight back to the sender, delivered after a fixed delay.
#[derive(Debug, Clone)]
pub struct CreditReturnQueue {
    delay: Cycle,
    /// (deliver_at, count) in nondecreasing time order.
    in_flight: VecDeque<(Cycle, u32)>,
}

impl CreditReturnQueue {
    /// Creates a queue with the given return delay (paper: 1 cycle).
    pub fn new(delay: Cycle) -> Self {
        Self {
            delay,
            in_flight: VecDeque::new(),
        }
    }

    /// Enqueues one credit released at `now`.
    pub fn send(&mut self, now: Cycle) {
        let at = now + self.delay;
        match self.in_flight.back_mut() {
            Some((t, n)) if *t == at => *n += 1,
            _ => self.in_flight.push_back((at, 1)),
        }
    }

    /// Credits that have arrived by `now` (inclusive); removes them.
    pub fn arrivals(&mut self, now: Cycle) -> u32 {
        let mut total = 0;
        while let Some(&(t, n)) = self.in_flight.front() {
            if t <= now {
                total += n;
                self.in_flight.pop_front();
            } else {
                break;
            }
        }
        total
    }

    /// Credits still in flight.
    pub fn pending(&self) -> u32 {
        self.in_flight.iter().map(|&(_, n)| n).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_consume_restore() {
        let mut c = CreditCounter::new(2);
        assert_eq!(c.available(), 2);
        assert!(c.can_send());
        c.consume();
        c.consume();
        assert!(!c.can_send());
        c.restore();
        assert_eq!(c.available(), 1);
        assert_eq!(c.max(), 2);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut c = CreditCounter::new(1);
        c.consume();
        c.consume();
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut c = CreditCounter::new(1);
        c.restore();
    }

    #[test]
    fn return_queue_delays_by_one_cycle() {
        let mut q = CreditReturnQueue::new(1);
        q.send(10);
        assert_eq!(q.arrivals(10), 0);
        assert_eq!(q.pending(), 1);
        assert_eq!(q.arrivals(11), 1);
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn return_queue_batches_same_cycle() {
        let mut q = CreditReturnQueue::new(2);
        q.send(5);
        q.send(5);
        q.send(6);
        assert_eq!(q.pending(), 3);
        assert_eq!(q.arrivals(7), 2);
        assert_eq!(q.arrivals(8), 1);
    }

    #[test]
    fn zero_delay_is_immediate() {
        let mut q = CreditReturnQueue::new(0);
        q.send(3);
        assert_eq!(q.arrivals(3), 1);
    }
}
