//! Flits: the flow-control units packets are split into.
//!
//! "Each packet, consisting of several fixed-size units called flits ...
//! progress\[es\] through various stages in the router" (§2.1). The paper's
//! default is 64-byte packets = 8 flits of 8 bytes.

use desim::Cycle;

/// A node's global identifier (0 .. B·D-1 in an R(1,B,D) system).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Numeric index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A packet's unique identifier within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketId(pub u64);

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlitKind {
    /// First flit; carries the route header.
    Head,
    /// Interior flit.
    Body,
    /// Last flit; releases the virtual channel.
    Tail,
    /// Single-flit packet (head and tail at once).
    HeadTail,
}

impl FlitKind {
    /// True for `Head` and `HeadTail`.
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// True for `Tail` and `HeadTail`.
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// One flit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flit {
    /// Owning packet.
    pub packet: PacketId,
    /// Position within the packet.
    pub kind: FlitKind,
    /// Source node of the packet.
    pub src: NodeId,
    /// Destination node of the packet.
    pub dst: NodeId,
    /// Cycle the packet was injected at the source NI.
    pub injected_at: Cycle,
    /// Whether this packet is labelled for measurement.
    pub labelled: bool,
    /// Flit sequence number within the packet (head = 0).
    pub seq: u16,
}

use desim::snap::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for FlitKind {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(match self {
            FlitKind::Head => 0,
            FlitKind::Body => 1,
            FlitKind::Tail => 2,
            FlitKind::HeadTail => 3,
        });
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => FlitKind::Head,
            1 => FlitKind::Body,
            2 => FlitKind::Tail,
            3 => FlitKind::HeadTail,
            b => return Err(SnapError::Format(format!("bad flit kind {b:#x}"))),
        })
    }
}

impl Snap for Flit {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.packet.0);
        self.kind.save(w);
        w.u32(self.src.0);
        w.u32(self.dst.0);
        w.u64(self.injected_at);
        w.bool(self.labelled);
        w.u16(self.seq);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Self {
            packet: PacketId(r.u64()?),
            kind: FlitKind::load(r)?,
            src: NodeId(r.u32()?),
            dst: NodeId(r.u32()?),
            injected_at: r.u64()?,
            labelled: r.bool()?,
            seq: r.u16()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(FlitKind::Head.is_head());
        assert!(!FlitKind::Head.is_tail());
        assert!(FlitKind::Tail.is_tail());
        assert!(!FlitKind::Body.is_head());
        assert!(FlitKind::HeadTail.is_head());
        assert!(FlitKind::HeadTail.is_tail());
    }

    #[test]
    fn node_display() {
        assert_eq!(NodeId(5).to_string(), "n5");
        assert_eq!(NodeId(5).index(), 5);
    }
}
