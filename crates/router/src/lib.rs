#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(clippy::perf)]
//! # router — cycle-accurate electrical virtual-channel router
//!
//! The Intra-Board Interconnect (IBI) of E-RAPID is "scalable electrical"
//! (§2); the paper's router parameters come from the SGI Spider chip
//! (Table 1): 16-bit channels at 400 MHz (6.4 Gbps/direction), credit-based
//! flow control with single-flit buffers and one-cycle credit delay, and a
//! four-stage pipeline — route computation (RC) and virtual-channel
//! allocation (VA) per packet, switch allocation (SA) and switch traversal
//! (ST) per flit (§2.1, following Dally & Towles).
//!
//! Modules:
//! * [`flit`] / [`packet`] — flits, packets, and the packetizer,
//! * [`buffer`] — bounded flit FIFOs,
//! * [`credit`] — credit counters for flow control,
//! * [`arbiter`] — round-robin and matrix arbiters,
//! * [`vc`] — per-input virtual-channel state machines,
//! * [`routing`] — output-port lookup functions,
//! * [`crossbar`] — the switch fabric (conflict checking),
//! * [`words`] — packed `u64` bitset words for the arbitration hot path,
//! * [`router`] — the assembled router with its per-cycle `step`.

//!
//! ## Example: a flit through the pipeline
//!
//! ```
//! use router::{Router, RouterConfig, PortId};
//! use router::routing::TableRoute;
//! use router::packet::Packet;
//! use router::flit::{NodeId, PacketId};
//!
//! let mut r = Router::new(
//!     RouterConfig { in_ports: 2, out_ports: 2, vcs: 2, buf_depth: 4, downstream_depth: 16 },
//!     Box::new(TableRoute::new(vec![PortId(0), PortId(1)])),
//! );
//! let pkt = Packet { id: PacketId(0), src: NodeId(0), dst: NodeId(1),
//!                    flits: 2, injected_at: 0, labelled: false };
//! for f in pkt.flitize() { r.inject(PortId(0), 0, f); }
//! let mut out = 0;
//! for now in 0..10 { out += r.step(now).len(); }
//! assert_eq!(out, 2); // head + tail traversed toward port 1
//! ```

pub mod arbiter;
pub mod buffer;
pub mod credit;
pub mod crossbar;
pub mod flit;
pub mod inject;
pub mod packet;
pub mod router;
pub mod routing;
pub mod vc;
pub mod words;

pub use flit::{Flit, FlitKind, NodeId, PacketId};
pub use inject::FlitInjector;
pub use packet::Packet;
pub use router::{Router, RouterConfig, Traversal};
pub use routing::PortId;
