//! The assembled virtual-channel router.
//!
//! A [`Router`] has `P` input ports and `P'` output ports, `V` virtual
//! channels per input, and per-(output, VC) credit counters toward the
//! downstream buffers. Its [`Router::step`] advances one clock cycle:
//!
//! 1. **RC** — a head flit reaching the front of an idle VC starts route
//!    computation (one cycle, Table 1).
//! 2. **VA** — VCs with a computed route request an output VC; a rotating
//!    arbiter grants at most one requester per (output, VC) per cycle (one
//!    cycle latency before the winner may bid).
//! 3. **SA** — active VCs with a buffered flit and a downstream credit bid
//!    for their output port; separable arbitration (one grant per output
//!    port, one per input port).
//! 4. **ST** — granted flits traverse the crossbar and appear in the cycle's
//!    [`Traversal`] list; tails release the output VC and reset the input
//!    VC.
//!
//! The environment owns the links: it delivers traversals (plus any channel
//! delay), returns credits with [`Router::credit`], and injects flits with
//! [`Router::inject`] after checking [`Router::can_accept`].
//!
//! ## Hot-path layout (DESIGN.md §16)
//!
//! Per-VC pipeline state lives in a flat struct-of-arrays [`VcArena`]
//! indexed by requester id `r = in_port · V + in_vc`, and every candidate
//! set the stages walk — RC-pending VCs, per-output-port VA waiters and SA
//! actives — is a packed `u64` bitset over those ids ([`crate::words`]),
//! iterated with `trailing_zeros`. Bitset iteration is inherently
//! ascending, which is the same canonical `(port asc, vc asc)` order the
//! original slice scans used, so grants, stalls and traversal order are
//! byte-identical to the pre-bitset router. Per-output-port `u64` masks
//! (`va_ports`/`sa_ports`) let VA/SA skip 64 idle ports per word.

use crate::arbiter::RoundRobinArbiter;
use crate::credit::CreditCounter;
use crate::flit::Flit;
use crate::routing::{PortId, RouteFunction};
use crate::vc::{VcArena, VcState, VcTag};
use crate::words;
use desim::Cycle;

/// Static configuration of a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterConfig {
    /// Input port count.
    pub in_ports: u16,
    /// Output port count.
    pub out_ports: u16,
    /// Virtual channels per input port.
    pub vcs: u8,
    /// Flit buffer depth per input VC (paper: 1).
    pub buf_depth: usize,
    /// Downstream buffer depth per (output, VC) — initial credit count.
    pub downstream_depth: u32,
}

impl RouterConfig {
    /// The paper's Spider-like parameters: single-flit buffers, 4 VCs.
    pub fn paper(in_ports: u16, out_ports: u16) -> Self {
        Self {
            in_ports,
            out_ports,
            vcs: 4,
            buf_depth: 1,
            downstream_depth: 1,
        }
    }
}

/// A flit that traversed the switch this cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Traversal {
    /// Output port the flit left through.
    pub out_port: PortId,
    /// Output VC the flit occupies downstream.
    pub out_vc: u8,
    /// The flit itself.
    pub flit: Flit,
    /// Input port it came from (for upstream crediting).
    pub in_port: PortId,
    /// Input VC it came from.
    pub in_vc: u8,
}

/// Aggregate router statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Flits injected.
    pub injected: u64,
    /// Flits traversed.
    pub traversed: u64,
    /// SA bids that lost arbitration or lacked credit.
    pub sa_stalls: u64,
    /// VA requests that found no free output VC.
    pub va_stalls: u64,
}

/// The router proper.
pub struct Router {
    cfg: RouterConfig,
    /// Words per requester bitset (= `ceil(in_ports · vcs / 64)`).
    req_words: usize,
    /// All input VC state, flat SoA indexed by `r = in_port · V + in_vc`.
    arena: VcArena,
    /// Owner of each (output port, output VC), flat `out · V + out_vc`.
    out_vc_owner: Vec<Option<(u16, u8)>>,
    /// Credits toward downstream, flat `out · V + out_vc`.
    out_credits: Vec<CreditCounter>,
    /// Route function.
    route: Box<dyn RouteFunction + Send>,
    /// Per-output-port SA arbiter over (in_port × in_vc) requesters.
    sa_arbiters: Vec<RoundRobinArbiter>,
    /// Per-output-port VA arbiter over (in_port × in_vc) requesters.
    va_arbiters: Vec<RoundRobinArbiter>,
    stats: RouterStats,
    /// Flits currently buffered across all input VCs (fast-path check).
    buffered: u64,
    /// High-water mark of `buffered` since the last telemetry roll.
    buffered_peak: u64,
    /// VCs in `WaitingVc{out}` per output port: `req_words` words per port,
    /// bit `r` set ⟺ VC `r` waits for an output VC at that port. These
    /// words *are* the VA arbiter's request input — no separate bitmap is
    /// seeded and wiped.
    va_waiting: Vec<u64>,
    /// VCs in `Active{out, ..}` per output port (same layout) — the SA
    /// stage's candidate set.
    sa_active: Vec<u64>,
    /// Output ports with any `va_waiting` bit set (one bit per port).
    va_ports: Vec<u64>,
    /// Output ports with any `sa_active` bit set (one bit per port).
    sa_ports: Vec<u64>,
    /// VCs with RC work pending: bit `r` set ⟺ `Idle` with a buffered
    /// head, or `Routing`. All-zero lets `step` skip the RC pass.
    rc_pending: Vec<u64>,
    /// SA scratch: request words over (in_port × in_vc), rebuilt per port.
    sa_requests: Vec<u64>,
    /// SA scratch: input ports already matched this cycle (one bit each).
    sa_input_used: Vec<u64>,
}

impl Router {
    /// Builds a router.
    pub fn new(cfg: RouterConfig, route: Box<dyn RouteFunction + Send>) -> Self {
        assert!(cfg.in_ports > 0 && cfg.out_ports > 0 && cfg.vcs > 0);
        let requesters = cfg.in_ports as usize * cfg.vcs as usize;
        let out_vcs = cfg.out_ports as usize * cfg.vcs as usize;
        let req_words = words::words_for(requesters);
        let port_words = words::words_for(cfg.out_ports as usize);
        Self {
            cfg,
            req_words,
            arena: VcArena::new(requesters, cfg.buf_depth),
            out_vc_owner: vec![None; out_vcs],
            out_credits: (0..out_vcs)
                .map(|_| CreditCounter::new(cfg.downstream_depth))
                .collect(),
            route,
            sa_arbiters: (0..cfg.out_ports)
                .map(|_| RoundRobinArbiter::new(requesters))
                .collect(),
            va_arbiters: (0..cfg.out_ports)
                .map(|_| RoundRobinArbiter::new(requesters))
                .collect(),
            stats: RouterStats::default(),
            buffered: 0,
            buffered_peak: 0,
            va_waiting: vec![0; cfg.out_ports as usize * req_words],
            sa_active: vec![0; cfg.out_ports as usize * req_words],
            va_ports: vec![0; port_words],
            sa_ports: vec![0; port_words],
            rc_pending: vec![0; req_words],
            sa_requests: vec![0; req_words],
            sa_input_used: vec![0; words::words_for(cfg.in_ports as usize)],
        }
    }

    /// Configuration.
    pub fn config(&self) -> RouterConfig {
        self.cfg
    }

    /// Overrides the downstream buffer depth of one output port (all VCs).
    /// Different output ports feed different consumers — node sinks vs.
    /// optical transmitter queues — with different buffer depths.
    ///
    /// # Panics
    /// If any credit of that port has already been consumed.
    pub fn set_downstream_depth(&mut self, port: PortId, depth: u32) {
        let vcs = self.cfg.vcs as usize;
        let base = port.index() * vcs;
        for c in &mut self.out_credits[base..base + vcs] {
            assert_eq!(
                c.available(),
                c.max(),
                "cannot resize a port with credits in flight"
            );
            *c = CreditCounter::new(depth);
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Requester id of input `(port, vc)`.
    #[inline]
    fn rid(&self, port: PortId, vc: u8) -> usize {
        port.index() * self.cfg.vcs as usize + vc as usize
    }

    /// True when input `(port, vc)` has buffer space.
    pub fn can_accept(&self, port: PortId, vc: u8) -> bool {
        !self.arena.buffers[self.rid(port, vc)].is_full()
    }

    /// Free buffer slots at input `(port, vc)`.
    pub fn input_space(&self, port: PortId, vc: u8) -> usize {
        self.arena.buffers[self.rid(port, vc)].space()
    }

    /// Occupancy fraction of input `(port, vc)`.
    pub fn input_occupancy(&self, port: PortId, vc: u8) -> f64 {
        self.arena.buffers[self.rid(port, vc)].occupancy()
    }

    /// Mean occupancy across all VCs of an input port.
    pub fn port_occupancy(&self, port: PortId) -> f64 {
        let vcs = self.cfg.vcs as usize;
        let base = port.index() * vcs;
        self.arena.buffers[base..base + vcs]
            .iter()
            .map(|b| b.occupancy())
            .sum::<f64>()
            / vcs as f64
    }

    /// Owner of output VC `(out_port, out_vc)`, as `(in_port, in_vc)`.
    pub fn output_owner(&self, out_port: PortId, out_vc: u8) -> Option<(u16, u8)> {
        self.out_vc_owner[out_port.index() * self.cfg.vcs as usize + out_vc as usize]
    }

    /// Injects a flit into input `(port, vc)`.
    ///
    /// # Panics
    /// If the buffer is full (callers must check [`Router::can_accept`]).
    pub fn inject(&mut self, port: PortId, vc: u8, flit: Flit) {
        let r = self.rid(port, vc);
        self.arena.buffers[r].push(flit);
        // A head landing in an empty idle VC arms RC for the next cycle.
        if self.arena.tag[r] == VcTag::Idle && self.arena.buffers[r].len() == 1 {
            words::set(&mut self.rc_pending, r);
        }
        self.stats.injected += 1;
        self.buffered += 1;
        if self.buffered > self.buffered_peak {
            self.buffered_peak = self.buffered;
        }
    }

    /// Returns one credit for `(out_port, out_vc)` — the downstream consumer
    /// freed a slot.
    pub fn credit(&mut self, out_port: PortId, out_vc: u8) {
        self.out_credits[out_port.index() * self.cfg.vcs as usize + out_vc as usize].restore();
    }

    /// Credits available toward `(out_port, out_vc)`.
    pub fn credits_available(&self, out_port: PortId, out_vc: u8) -> u32 {
        self.out_credits[out_port.index() * self.cfg.vcs as usize + out_vc as usize].available()
    }

    /// Flits currently buffered in the router's input VCs.
    pub fn buffered_flits(&self) -> u64 {
        self.buffered
    }

    /// High-water mark of buffered flits since the last
    /// [`Router::take_buffered_peak`] (a per-window congestion gauge for
    /// the telemetry layer — one `max` in `inject`, nothing in the fast
    /// path).
    pub fn buffered_peak(&self) -> u64 {
        self.buffered_peak
    }

    /// Returns the high-water mark and restarts it from the current
    /// occupancy (called at each R_w window boundary).
    pub fn take_buffered_peak(&mut self) -> u64 {
        let peak = self.buffered_peak;
        self.buffered_peak = self.buffered;
        peak
    }

    /// Coarse heap-footprint estimate in bytes: the per-(port × VC) state
    /// that dominates the router's memory — the SoA VC arena (tags, routed
    /// ports, timers, flit buffers), output-VC owner/credit tables,
    /// arbiters and the packed bitset words. An analytic capacity ×
    /// element-size sum (not an allocator probe), comparable across
    /// configurations: the scaling bench uses it to track how the
    /// electrical domain's footprint grows with the board count.
    pub fn approx_memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let word_vecs = self.va_waiting.capacity()
            + self.sa_active.capacity()
            + self.va_ports.capacity()
            + self.sa_ports.capacity()
            + self.rc_pending.capacity()
            + self.sa_requests.capacity()
            + self.sa_input_used.capacity();
        size_of::<Self>()
            + self.arena.approx_memory_bytes()
            + self.out_vc_owner.capacity() * size_of::<Option<(u16, u8)>>()
            + self.out_credits.capacity() * size_of::<CreditCounter>()
            + (self.sa_arbiters.capacity() + self.va_arbiters.capacity())
                * size_of::<RoundRobinArbiter>()
            + word_vecs * size_of::<u64>()
    }

    /// Serializes the router's mutable state for a checkpoint.
    ///
    /// Only pipeline state is written: input VC buffers and states, output
    /// VC ownership and credits, arbiter rotors, stats and occupancy
    /// counters. The derived bitset words (`va_waiting`, `sa_active`, the
    /// port masks and `rc_pending`) are *not* persisted — they are exact
    /// functions of the VC states and are rebuilt on restore; a bitset is
    /// canonically ordered by construction, so the rebuild is behaviourally
    /// identical to the live words. The byte format is unchanged from the
    /// pre-arena router: VC states serialize through the [`VcState`] enum
    /// bridge.
    pub fn save_state(&self, w: &mut desim::snap::SnapWriter) {
        use desim::snap::Snap;
        w.tag(b"RTRS");
        w.usize(self.cfg.in_ports as usize);
        for r in 0..self.arena.len() {
            self.arena.buffers[r].save_state(w);
            self.arena.state(r).save(w);
        }
        w.usize(self.cfg.out_ports as usize);
        for owner in &self.out_vc_owner {
            owner.save(w);
        }
        for c in &self.out_credits {
            c.save_state(w);
        }
        for a in &self.sa_arbiters {
            a.save_state(w);
        }
        for a in &self.va_arbiters {
            a.save_state(w);
        }
        w.u64(self.stats.injected);
        w.u64(self.stats.traversed);
        w.u64(self.stats.sa_stalls);
        w.u64(self.stats.va_stalls);
        w.u64(self.buffered);
        w.u64(self.buffered_peak);
    }

    /// Overlays checkpointed state onto a freshly built router of the same
    /// configuration, then rebuilds the derived bitset words.
    pub fn load_state(
        &mut self,
        r: &mut desim::snap::SnapReader<'_>,
    ) -> Result<(), desim::snap::SnapError> {
        use desim::snap::Snap;
        r.tag(b"RTRS")?;
        r.len_eq(self.cfg.in_ports as usize, "router input ports")?;
        for i in 0..self.arena.len() {
            self.arena.buffers[i].load_state(r)?;
            let s = VcState::load(r)?;
            self.arena.set_state(i, s);
        }
        r.len_eq(self.cfg.out_ports as usize, "router output ports")?;
        for owner in &mut self.out_vc_owner {
            *owner = Option::<(u16, u8)>::load(r)?;
        }
        for c in &mut self.out_credits {
            c.load_state(r)?;
        }
        for a in &mut self.sa_arbiters {
            a.load_state(r)?;
        }
        for a in &mut self.va_arbiters {
            a.load_state(r)?;
        }
        self.stats = RouterStats {
            injected: r.u64()?,
            traversed: r.u64()?,
            sa_stalls: r.u64()?,
            va_stalls: r.u64()?,
        };
        self.buffered = r.u64()?;
        self.buffered_peak = r.u64()?;
        self.rebuild_derived()
    }

    /// Adds VC `r` to the VA waiting set of output port `out`.
    #[inline]
    fn add_waiting(&mut self, out: usize, r: usize) {
        let base = out * self.req_words;
        words::set(&mut self.va_waiting[base..base + self.req_words], r);
        words::set(&mut self.va_ports, out);
    }

    /// Removes VC `r` from the VA waiting set, clearing the port mask bit
    /// when the set empties.
    #[inline]
    fn remove_waiting(&mut self, out: usize, r: usize) {
        let base = out * self.req_words;
        let set = &mut self.va_waiting[base..base + self.req_words];
        words::clear(set, r);
        if !words::any(set) {
            words::clear(&mut self.va_ports, out);
        }
    }

    /// Adds VC `r` to the SA active set of output port `out`.
    #[inline]
    fn add_active(&mut self, out: usize, r: usize) {
        let base = out * self.req_words;
        words::set(&mut self.sa_active[base..base + self.req_words], r);
        words::set(&mut self.sa_ports, out);
    }

    /// Removes VC `r` from the SA active set, clearing the port mask bit
    /// when the set empties.
    #[inline]
    fn remove_active(&mut self, out: usize, r: usize) {
        let base = out * self.req_words;
        let set = &mut self.sa_active[base..base + self.req_words];
        words::clear(set, r);
        if !words::any(set) {
            words::clear(&mut self.sa_ports, out);
        }
    }

    /// Recomputes the derived bitset words (`va_waiting`, `sa_active`, the
    /// port masks, `rc_pending`) from the VC states, in canonical
    /// port-ascending/VC-ascending order.
    fn rebuild_derived(&mut self) -> Result<(), desim::snap::SnapError> {
        self.va_waiting.iter_mut().for_each(|w| *w = 0);
        self.sa_active.iter_mut().for_each(|w| *w = 0);
        self.va_ports.iter_mut().for_each(|w| *w = 0);
        self.sa_ports.iter_mut().for_each(|w| *w = 0);
        self.rc_pending.iter_mut().for_each(|w| *w = 0);
        let out_ports = self.cfg.out_ports as usize;
        for r in 0..self.arena.len() {
            match self.arena.tag[r] {
                VcTag::Idle => {
                    if !self.arena.buffers[r].is_empty() {
                        words::set(&mut self.rc_pending, r);
                    }
                }
                VcTag::Routing => words::set(&mut self.rc_pending, r),
                VcTag::Waiting => {
                    let out = self.arena.out_port[r] as usize;
                    if out >= out_ports {
                        return Err(desim::snap::SnapError::Mismatch(format!(
                            "VC routed to out-of-range port {out}"
                        )));
                    }
                    self.add_waiting(out, r);
                }
                VcTag::Active => {
                    let out = self.arena.out_port[r] as usize;
                    if out >= out_ports {
                        return Err(desim::snap::SnapError::Mismatch(format!(
                            "active VC at out-of-range port {out}"
                        )));
                    }
                    self.add_active(out, r);
                }
            }
        }
        Ok(())
    }

    /// Advances one cycle; returns the flits that traversed the switch.
    ///
    /// Convenience wrapper over [`Router::step_into`] that allocates a
    /// fresh result vector — fine for tests and one-off drivers; the
    /// simulation hot loop should pass a reusable buffer to `step_into`.
    pub fn step(&mut self, now: Cycle) -> Vec<Traversal> {
        let mut out = Vec::new();
        self.step_into(now, &mut out);
        out
    }

    /// Advances one cycle, appending the flits that traversed the switch
    /// to `out` (which is *not* cleared — the caller owns it).
    ///
    /// Fast path: with no buffered flits there is no RC/VA/SA work —
    /// every pipeline state either is Idle or is an Active VC waiting for
    /// its next flit — so the cycle is a no-op. All arbitration state is
    /// persistent on the router, so a steady-state cycle performs no heap
    /// allocation.
    pub fn step_into(&mut self, now: Cycle, out: &mut Vec<Traversal>) {
        if self.buffered == 0 {
            return;
        }
        self.stage_rc(now);
        self.stage_va(now);
        self.stage_sa_st(now, out);
    }

    /// RC: idle VCs with a head flit start route computation; completed
    /// computations move to WaitingVc.
    ///
    /// The pass walks `rc_pending` (bit `r` set ⟺ VC `r` is `Idle` with a
    /// buffered head, or `Routing`). Gating is exact — not an
    /// approximation — because every transition into a candidate state
    /// sets the bit, and each VC's RC decision reads only that VC's state,
    /// so skipping clear bits is indistinguishable from scanning them.
    /// Words are snapshotted before scanning: the pass only *clears* bits
    /// (`Routing` → `WaitingVc`), so the snapshot visits exactly the VCs
    /// the old full scan would have acted on, in the same ascending order.
    fn stage_rc(&mut self, now: Cycle) {
        let vcs = self.cfg.vcs as usize;
        for wi in 0..self.req_words {
            let mut bits = self.rc_pending[wi];
            while bits != 0 {
                let r = wi * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                match self.arena.tag[r] {
                    VcTag::Idle => {
                        if let Some(front) = self.arena.buffers[r].front() {
                            let (port, vc) = (r / vcs, r % vcs);
                            assert!(
                                front.kind.is_head(),
                                "non-head flit at front of idle VC (p{port} v{vc})"
                            );
                            self.arena.tag[r] = VcTag::Routing;
                            self.arena.timer[r] = now + 1;
                        }
                    }
                    VcTag::Routing if now >= self.arena.timer[r] => {
                        let Some(front) = self.arena.buffers[r].front() else {
                            // A routing VC without a head flit is corrupt
                            // state; recover by resetting it to Idle.
                            debug_assert!(false, "routing VC lost its head flit");
                            self.arena.tag[r] = VcTag::Idle;
                            words::clear(&mut self.rc_pending, r);
                            continue;
                        };
                        let dst = front.dst;
                        let out_port = self.route.route(dst);
                        assert!(
                            out_port.index() < self.cfg.out_ports as usize,
                            "route function returned invalid port {out_port}"
                        );
                        self.arena.tag[r] = VcTag::Waiting;
                        self.arena.out_port[r] = out_port.0;
                        words::clear(&mut self.rc_pending, r);
                        self.add_waiting(out_port.index(), r);
                    }
                    _ => {}
                }
            }
        }
    }

    /// VA: WaitingVc inputs request a free output VC at their output port.
    ///
    /// Only ports with a set `va_ports` bit are visited, and the port's
    /// `va_waiting` words *are* the arbiter's request input — the winner
    /// is cleared from the set before the next grant round, which is
    /// exactly the seed-bitmap / clear-winner dance of the slice router
    /// with the copy removed.
    fn stage_va(&mut self, now: Cycle) {
        let vcs = self.cfg.vcs as usize;
        for pw in 0..self.va_ports.len() {
            let mut ports = self.va_ports[pw];
            while ports != 0 {
                let out = pw * 64 + ports.trailing_zeros() as usize;
                ports &= ports - 1;
                let owner_base = out * vcs;
                // Free output VCs at this port.
                let free = self.out_vc_owner[owner_base..owner_base + vcs]
                    .iter()
                    .filter(|o| o.is_none())
                    .count();
                let req_base = out * self.req_words;
                if free == 0 {
                    self.stats.va_stalls +=
                        words::count(&self.va_waiting[req_base..req_base + self.req_words]);
                    continue;
                }
                // Grant one output VC per arbitration round, up to the
                // number of free VCs (ascending — owners granted this
                // cycle sit at already-passed VC indices, so the dynamic
                // scan equals the old pre-built free list).
                for out_vc in 0..vcs {
                    if self.out_vc_owner[owner_base + out_vc].is_some() {
                        continue;
                    }
                    let Some(winner) = self.va_arbiters[out]
                        .arbitrate_words(&self.va_waiting[req_base..req_base + self.req_words])
                    else {
                        break;
                    };
                    self.remove_waiting(out, winner);
                    self.add_active(out, winner);
                    let (p, v) = (winner / vcs, winner % vcs);
                    self.out_vc_owner[owner_base + out_vc] = Some((p as u16, v as u8));
                    self.arena.tag[winner] = VcTag::Active;
                    self.arena.out_port[winner] = out as u16;
                    self.arena.out_vc[winner] = out_vc as u8;
                    self.arena.timer[winner] = now + 1;
                }
            }
        }
    }

    /// SA + ST: separable switch allocation, then traversal (appended to
    /// `traversals`).
    ///
    /// Candidates come from the per-port `sa_active` words, filtered per
    /// bit by readiness (active-at timer, buffered flit, downstream
    /// credit, input port not yet matched) into the `sa_requests` scratch
    /// words; the request bits — and therefore the arbitration outcome,
    /// the stall stats and the traversal order — are exactly those of the
    /// old full scan.
    fn stage_sa_st(&mut self, now: Cycle, traversals: &mut Vec<Traversal>) {
        let vcs = self.cfg.vcs as usize;
        self.sa_input_used.iter_mut().for_each(|w| *w = 0);
        for pw in 0..self.sa_ports.len() {
            let mut ports = self.sa_ports[pw];
            while ports != 0 {
                let out = pw * 64 + ports.trailing_zeros() as usize;
                ports &= ports - 1;
                let req_base = out * self.req_words;
                let owner_base = out * vcs;
                let mut requesters = 0u64;
                for wi in 0..self.req_words {
                    let mut bits = self.sa_active[req_base + wi];
                    let mut req_word = 0u64;
                    while bits != 0 {
                        let bit = bits.trailing_zeros();
                        bits &= bits - 1;
                        let r = wi * 64 + bit as usize;
                        let p = r / vcs;
                        if words::test(&self.sa_input_used, p) {
                            continue;
                        }
                        if self.arena.tag[r] != VcTag::Active {
                            debug_assert!(false, "sa_active entry not Active");
                            continue;
                        }
                        let out_vc = self.arena.out_vc[r] as usize;
                        if now >= self.arena.timer[r]
                            && !self.arena.buffers[r].is_empty()
                            && self.out_credits[owner_base + out_vc].can_send()
                        {
                            req_word |= 1u64 << bit;
                            requesters += 1;
                        }
                    }
                    self.sa_requests[wi] = req_word;
                }
                if requesters == 0 {
                    continue;
                }
                let Some(winner) = self.sa_arbiters[out].arbitrate_words(&self.sa_requests) else {
                    // Unreachable (`requesters` guaranteed one); skip the
                    // port rather than corrupting switch state.
                    debug_assert!(false, "arbitration failed with requests pending");
                    continue;
                };
                self.stats.sa_stalls += requesters - 1;
                let (p, v) = (winner / vcs, winner % vcs);
                words::set(&mut self.sa_input_used, p);
                if self.arena.tag[winner] != VcTag::Active {
                    debug_assert!(false, "SA winner was not Active");
                    continue;
                }
                let out_vc = self.arena.out_vc[winner];
                let Some(flit) = self.arena.buffers[winner].pop() else {
                    debug_assert!(false, "SA winner had no flit buffered");
                    continue;
                };
                self.buffered -= 1;
                self.out_credits[owner_base + out_vc as usize].consume();
                self.stats.traversed += 1;
                if flit.kind.is_tail() {
                    // Release the output VC and return the input VC to
                    // Idle; the next head (if already buffered) starts RC
                    // next cycle.
                    self.out_vc_owner[owner_base + out_vc as usize] = None;
                    self.arena.tag[winner] = VcTag::Idle;
                    self.remove_active(out, winner);
                    if !self.arena.buffers[winner].is_empty() {
                        // The next packet's head is already queued: RC work.
                        words::set(&mut self.rc_pending, winner);
                    }
                }
                traversals.push(Traversal {
                    out_port: PortId(out as u16),
                    out_vc,
                    flit,
                    in_port: PortId(p as u16),
                    in_vc: v as u8,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{NodeId, PacketId};
    use crate::packet::Packet;
    use crate::routing::TableRoute;

    /// 2-in, 2-out router: node 0 → port 0, node 1 → port 1.
    fn small(buf_depth: usize, downstream: u32) -> Router {
        Router::new(
            RouterConfig {
                in_ports: 2,
                out_ports: 2,
                vcs: 2,
                buf_depth,
                downstream_depth: downstream,
            },
            Box::new(TableRoute::new(vec![PortId(0), PortId(1)])),
        )
    }

    fn packet(id: u64, dst: u32, flits: u16) -> Vec<crate::flit::Flit> {
        Packet {
            id: PacketId(id),
            src: NodeId(0),
            dst: NodeId(dst),
            flits,
            injected_at: 0,
            labelled: false,
        }
        .flitize()
    }

    /// Drives the router, injecting flits as space allows, collecting
    /// traversals, and returning credits after `credit_delay` cycles.
    fn run(
        r: &mut Router,
        mut pending: Vec<(PortId, u8, Vec<crate::flit::Flit>)>,
        cycles: Cycle,
    ) -> Vec<(Cycle, Traversal)> {
        let mut out = Vec::new();
        let mut credit_returns: Vec<(Cycle, PortId, u8)> = Vec::new();
        for now in 0..cycles {
            // Return credits due now (downstream instantly consumes).
            credit_returns.retain(|&(t, p, v)| {
                if t <= now {
                    r.credit(p, v);
                    false
                } else {
                    true
                }
            });
            for (port, vc, flits) in &mut pending {
                while !flits.is_empty() && r.can_accept(*port, *vc) {
                    let f = flits.remove(0);
                    r.inject(*port, *vc, f);
                }
            }
            for t in r.step(now) {
                credit_returns.push((now + 1, t.out_port, t.out_vc));
                out.push((now, t));
            }
        }
        out
    }

    #[test]
    fn single_packet_traverses_in_order() {
        let mut r = small(4, 4);
        let flits = packet(1, 1, 4);
        let log = run(&mut r, vec![(PortId(0), 0, flits)], 30);
        assert_eq!(log.len(), 4);
        // All to output port 1, in sequence order.
        assert!(log.iter().all(|(_, t)| t.out_port == PortId(1)));
        let seqs: Vec<u16> = log.iter().map(|(_, t)| t.flit.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        // Head needed RC (1) + VA (1) before SA: first traversal at cycle ≥ 2.
        assert!(log[0].0 >= 2, "head traversed too early at {}", log[0].0);
        assert_eq!(r.stats().traversed, 4);
        assert_eq!(r.stats().injected, 4);
    }

    #[test]
    fn buffered_peak_tracks_the_window_high_water_mark() {
        let mut r = small(4, 4);
        let flits = packet(1, 1, 4);
        // Fill one input VC: occupancy and peak both reach 4.
        for f in flits {
            r.inject(PortId(0), 0, f);
        }
        assert_eq!(r.buffered_flits(), 4);
        assert_eq!(r.buffered_peak(), 4);
        // Drain completely; the peak survives until taken.
        let mut drained = 0;
        for now in 0..30 {
            let n = r.step(now).len();
            drained += n;
            for _ in 0..n {
                r.credit(PortId(1), 0);
            }
        }
        assert_eq!(drained, 4);
        assert_eq!(r.buffered_flits(), 0);
        assert_eq!(r.buffered_peak(), 4);
        // Taking the peak restarts it from the current (empty) occupancy.
        assert_eq!(r.take_buffered_peak(), 4);
        assert_eq!(r.buffered_peak(), 0);
    }

    #[test]
    fn single_flit_buffer_still_makes_progress() {
        // The paper's configuration: 1-flit buffers, 1 downstream slot,
        // 1-cycle credit return. Throughput is credit-limited but nonzero.
        let mut r = small(1, 1);
        let flits = packet(1, 1, 8);
        let log = run(&mut r, vec![(PortId(0), 0, flits)], 100);
        assert_eq!(log.len(), 8, "all 8 flits must eventually traverse");
        let seqs: Vec<u16> = log.iter().map(|(_, t)| t.flit.seq).collect();
        assert_eq!(seqs, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn two_flows_to_different_outputs_do_not_interfere() {
        let mut r = small(4, 8);
        let a = packet(1, 0, 4);
        let b = packet(2, 1, 4);
        let log = run(&mut r, vec![(PortId(0), 0, a), (PortId(1), 0, b)], 40);
        assert_eq!(log.len(), 8);
        let to0 = log.iter().filter(|(_, t)| t.out_port == PortId(0)).count();
        let to1 = log.iter().filter(|(_, t)| t.out_port == PortId(1)).count();
        assert_eq!((to0, to1), (4, 4));
    }

    #[test]
    fn two_flows_share_one_output_fairly() {
        let mut r = small(4, 8);
        let a = packet(1, 1, 6);
        let b = packet(2, 1, 6);
        // Different input ports, same destination.
        let log = run(&mut r, vec![(PortId(0), 0, a), (PortId(1), 0, b)], 100);
        assert_eq!(log.len(), 12);
        // Output port serialises: no cycle emits two flits on port 1.
        let mut cycles_seen = std::collections::HashSet::new();
        for (c, t) in &log {
            assert_eq!(t.out_port, PortId(1));
            assert!(
                cycles_seen.insert(*c),
                "two flits on one output in cycle {c}"
            );
        }
        // Per-packet flit order is preserved.
        for pid in [1u64, 2] {
            let seqs: Vec<u16> = log
                .iter()
                .filter(|(_, t)| t.flit.packet == PacketId(pid))
                .map(|(_, t)| t.flit.seq)
                .collect();
            assert_eq!(seqs, (0..6).collect::<Vec<_>>());
        }
    }

    #[test]
    fn vcs_interleave_packets_on_one_input() {
        let mut r = small(4, 8);
        let a = packet(1, 1, 4);
        let b = packet(2, 0, 4);
        let log = run(&mut r, vec![(PortId(0), 0, a), (PortId(0), 1, b)], 100);
        assert_eq!(log.len(), 8);
        // One input port: at most one traversal per cycle overall.
        let mut cycles_seen = std::collections::HashSet::new();
        for (c, _) in &log {
            assert!(cycles_seen.insert(*c));
        }
    }

    #[test]
    fn no_credit_no_traversal() {
        let mut r = small(4, 1);
        let flits = packet(1, 1, 2);
        for f in flits {
            r.inject(PortId(0), 0, f);
        }
        // Step without ever returning credits: only 1 flit (the single
        // downstream slot) may traverse.
        let mut count = 0;
        for now in 0..20 {
            count += r.step(now).len();
        }
        assert_eq!(count, 1);
        assert_eq!(r.credits_available(PortId(1), 0), 0);
        // Returning the credit unblocks the tail.
        r.credit(PortId(1), 0);
        let mut more = 0;
        for now in 20..30 {
            more += r.step(now).len();
        }
        assert_eq!(more, 1);
    }

    #[test]
    fn tail_releases_output_vc() {
        let mut r = small(4, 8);
        let a = packet(1, 1, 2);
        let log = run(&mut r, vec![(PortId(0), 0, a)], 20);
        assert_eq!(log.len(), 2);
        // After the tail, all output VCs at port 1 are free again.
        for v in 0..2u8 {
            assert_eq!(r.output_owner(PortId(1), v), None);
        }
        // A second packet reuses the VC.
        let b = packet(2, 1, 2);
        let log2 = run(&mut r, vec![(PortId(0), 0, b)], 20);
        assert_eq!(log2.len(), 2);
    }

    #[test]
    fn port_occupancy_reflects_buffers() {
        let mut r = small(2, 1);
        let flit = packet(1, 1, 1).remove(0);
        r.inject(PortId(0), 0, flit);
        assert!((r.input_occupancy(PortId(0), 0) - 0.5).abs() < 1e-12);
        assert!((r.port_occupancy(PortId(0)) - 0.25).abs() < 1e-12);
        assert_eq!(r.input_space(PortId(0), 0), 1);
    }

    #[test]
    #[should_panic(expected = "non-head flit")]
    fn body_flit_first_is_a_protocol_error() {
        let mut r = small(4, 4);
        let mut flits = packet(1, 1, 3);
        let body = flits.remove(1);
        r.inject(PortId(0), 0, body);
        r.step(0);
    }

    #[test]
    fn per_port_downstream_depth() {
        let mut r = small(4, 1);
        r.set_downstream_depth(PortId(1), 16);
        assert_eq!(r.credits_available(PortId(1), 0), 16);
        assert_eq!(r.credits_available(PortId(0), 0), 1);
        // A whole 8-flit packet now flows without credit returns.
        let flits = packet(1, 1, 8);
        let log = run(&mut r, vec![(PortId(0), 0, flits)], 40);
        assert_eq!(log.len(), 8);
    }

    #[test]
    fn stats_accumulate() {
        let mut r = small(4, 8);
        let a = packet(1, 1, 4);
        let b = packet(2, 1, 4);
        run(&mut r, vec![(PortId(0), 0, a), (PortId(1), 0, b)], 100);
        let s = r.stats();
        assert_eq!(s.injected, 8);
        assert_eq!(s.traversed, 8);
        assert!(s.sa_stalls > 0, "two flows into one port must conflict");
    }
}
