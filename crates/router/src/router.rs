//! The assembled virtual-channel router.
//!
//! A [`Router`] has `P` input ports and `P'` output ports, `V` virtual
//! channels per input, and per-(output, VC) credit counters toward the
//! downstream buffers. Its [`Router::step`] advances one clock cycle:
//!
//! 1. **RC** — a head flit reaching the front of an idle VC starts route
//!    computation (one cycle, Table 1).
//! 2. **VA** — VCs with a computed route request an output VC; a rotating
//!    arbiter grants at most one requester per (output, VC) per cycle (one
//!    cycle latency before the winner may bid).
//! 3. **SA** — active VCs with a buffered flit and a downstream credit bid
//!    for their output port; separable arbitration (one grant per output
//!    port, one per input port).
//! 4. **ST** — granted flits traverse the crossbar and appear in the cycle's
//!    [`Traversal`] list; tails release the output VC and reset the input
//!    VC.
//!
//! The environment owns the links: it delivers traversals (plus any channel
//! delay), returns credits with [`Router::credit`], and injects flits with
//! [`Router::inject`] after checking [`Router::can_accept`].

use crate::arbiter::{Arbiter, RoundRobinArbiter};
use crate::credit::CreditCounter;
use crate::flit::Flit;
use crate::routing::{PortId, RouteFunction};
use crate::vc::{InputVc, VcState};
use desim::Cycle;

/// Static configuration of a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterConfig {
    /// Input port count.
    pub in_ports: u16,
    /// Output port count.
    pub out_ports: u16,
    /// Virtual channels per input port.
    pub vcs: u8,
    /// Flit buffer depth per input VC (paper: 1).
    pub buf_depth: usize,
    /// Downstream buffer depth per (output, VC) — initial credit count.
    pub downstream_depth: u32,
}

impl RouterConfig {
    /// The paper's Spider-like parameters: single-flit buffers, 4 VCs.
    pub fn paper(in_ports: u16, out_ports: u16) -> Self {
        Self {
            in_ports,
            out_ports,
            vcs: 4,
            buf_depth: 1,
            downstream_depth: 1,
        }
    }
}

/// A flit that traversed the switch this cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Traversal {
    /// Output port the flit left through.
    pub out_port: PortId,
    /// Output VC the flit occupies downstream.
    pub out_vc: u8,
    /// The flit itself.
    pub flit: Flit,
    /// Input port it came from (for upstream crediting).
    pub in_port: PortId,
    /// Input VC it came from.
    pub in_vc: u8,
}

/// Aggregate router statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Flits injected.
    pub injected: u64,
    /// Flits traversed.
    pub traversed: u64,
    /// SA bids that lost arbitration or lacked credit.
    pub sa_stalls: u64,
    /// VA requests that found no free output VC.
    pub va_stalls: u64,
}

/// The router proper.
pub struct Router {
    cfg: RouterConfig,
    inputs: Vec<Vec<InputVc>>,
    /// Owner of each (output port, output VC): (in_port, in_vc).
    out_vc_owner: Vec<Vec<Option<(u16, u8)>>>,
    /// Credits toward downstream per (output port, output VC).
    out_credits: Vec<Vec<CreditCounter>>,
    /// Route function.
    route: Box<dyn RouteFunction + Send>,
    /// Per-output-port SA arbiter over (in_port × in_vc) requesters.
    sa_arbiters: Vec<RoundRobinArbiter>,
    /// Per-output-port VA arbiter over (in_port × in_vc) requesters.
    va_arbiters: Vec<RoundRobinArbiter>,
    stats: RouterStats,
    /// Flits currently buffered across all input VCs (fast-path check).
    buffered: u64,
    /// High-water mark of `buffered` since the last telemetry roll.
    buffered_peak: u64,
    /// VA scratch: free output VCs at the port under arbitration. Persistent
    /// so the per-cycle pipeline allocates nothing in steady state.
    va_free: Vec<usize>,
    /// VA scratch: request bitmap over (in_port × in_vc).
    va_requests: Vec<bool>,
    /// SA scratch: request bitmap over (in_port × in_vc).
    sa_requests: Vec<bool>,
    /// SA scratch: input ports already matched this cycle.
    sa_input_used: Vec<bool>,
    /// Input VCs in `WaitingVc{out}` per output port (requester indices
    /// `p·V + v`, unordered — they only seed the arbitration bitmap, whose
    /// bits are position-addressed). The VA stage visits only ports with a
    /// non-empty list instead of scanning every input VC per output port.
    va_waiting: Vec<Vec<u16>>,
    /// Input VCs in `Active{out, ..}` per output port — the SA stage's
    /// candidate set (same representation as `va_waiting`).
    sa_active: Vec<Vec<u16>>,
    /// Input VCs with RC work pending (`Idle` with a buffered head, or
    /// `Routing`). Zero lets `step` skip the RC scan entirely.
    rc_candidates: u32,
}

impl Router {
    /// Builds a router.
    pub fn new(cfg: RouterConfig, route: Box<dyn RouteFunction + Send>) -> Self {
        assert!(cfg.in_ports > 0 && cfg.out_ports > 0 && cfg.vcs > 0);
        let requesters = cfg.in_ports as usize * cfg.vcs as usize;
        Self {
            cfg,
            inputs: (0..cfg.in_ports)
                .map(|_| (0..cfg.vcs).map(|_| InputVc::new(cfg.buf_depth)).collect())
                .collect(),
            out_vc_owner: (0..cfg.out_ports)
                .map(|_| vec![None; cfg.vcs as usize])
                .collect(),
            out_credits: (0..cfg.out_ports)
                .map(|_| {
                    (0..cfg.vcs)
                        .map(|_| CreditCounter::new(cfg.downstream_depth))
                        .collect()
                })
                .collect(),
            route,
            sa_arbiters: (0..cfg.out_ports)
                .map(|_| RoundRobinArbiter::new(requesters))
                .collect(),
            va_arbiters: (0..cfg.out_ports)
                .map(|_| RoundRobinArbiter::new(requesters))
                .collect(),
            stats: RouterStats::default(),
            buffered: 0,
            buffered_peak: 0,
            va_free: Vec::with_capacity(cfg.vcs as usize),
            va_requests: vec![false; requesters],
            sa_requests: vec![false; requesters],
            sa_input_used: vec![false; cfg.in_ports as usize],
            va_waiting: vec![Vec::new(); cfg.out_ports as usize],
            sa_active: vec![Vec::new(); cfg.out_ports as usize],
            rc_candidates: 0,
        }
    }

    /// Configuration.
    pub fn config(&self) -> RouterConfig {
        self.cfg
    }

    /// Overrides the downstream buffer depth of one output port (all VCs).
    /// Different output ports feed different consumers — node sinks vs.
    /// optical transmitter queues — with different buffer depths.
    ///
    /// # Panics
    /// If any credit of that port has already been consumed.
    pub fn set_downstream_depth(&mut self, port: PortId, depth: u32) {
        for c in &mut self.out_credits[port.index()] {
            assert_eq!(
                c.available(),
                c.max(),
                "cannot resize a port with credits in flight"
            );
            *c = CreditCounter::new(depth);
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// True when input `(port, vc)` has buffer space.
    pub fn can_accept(&self, port: PortId, vc: u8) -> bool {
        self.inputs[port.index()][vc as usize].can_accept()
    }

    /// Free buffer slots at input `(port, vc)`.
    pub fn input_space(&self, port: PortId, vc: u8) -> usize {
        self.inputs[port.index()][vc as usize].buffer.space()
    }

    /// Occupancy fraction of input `(port, vc)`.
    pub fn input_occupancy(&self, port: PortId, vc: u8) -> f64 {
        self.inputs[port.index()][vc as usize].buffer.occupancy()
    }

    /// Mean occupancy across all VCs of an input port.
    pub fn port_occupancy(&self, port: PortId) -> f64 {
        let vcs = &self.inputs[port.index()];
        vcs.iter().map(|vc| vc.buffer.occupancy()).sum::<f64>() / vcs.len() as f64
    }

    /// Injects a flit into input `(port, vc)`.
    ///
    /// # Panics
    /// If the buffer is full (callers must check [`Router::can_accept`]).
    pub fn inject(&mut self, port: PortId, vc: u8, flit: Flit) {
        let ivc = &mut self.inputs[port.index()][vc as usize];
        ivc.buffer.push(flit);
        // A head landing in an empty idle VC arms RC for the next cycle.
        if ivc.state == VcState::Idle && ivc.buffer.len() == 1 {
            self.rc_candidates += 1;
        }
        self.stats.injected += 1;
        self.buffered += 1;
        if self.buffered > self.buffered_peak {
            self.buffered_peak = self.buffered;
        }
    }

    /// Returns one credit for `(out_port, out_vc)` — the downstream consumer
    /// freed a slot.
    pub fn credit(&mut self, out_port: PortId, out_vc: u8) {
        self.out_credits[out_port.index()][out_vc as usize].restore();
    }

    /// Credits available toward `(out_port, out_vc)`.
    pub fn credits_available(&self, out_port: PortId, out_vc: u8) -> u32 {
        self.out_credits[out_port.index()][out_vc as usize].available()
    }

    /// Flits currently buffered in the router's input VCs.
    pub fn buffered_flits(&self) -> u64 {
        self.buffered
    }

    /// High-water mark of buffered flits since the last
    /// [`Router::take_buffered_peak`] (a per-window congestion gauge for
    /// the telemetry layer — one `max` in `inject`, nothing in the fast
    /// path).
    pub fn buffered_peak(&self) -> u64 {
        self.buffered_peak
    }

    /// Returns the high-water mark and restarts it from the current
    /// occupancy (called at each R_w window boundary).
    pub fn take_buffered_peak(&mut self) -> u64 {
        let peak = self.buffered_peak;
        self.buffered_peak = self.buffered;
        peak
    }

    /// Coarse heap-footprint estimate in bytes: the per-(port × VC) state
    /// that dominates the router's memory — input VC buffers, output-VC
    /// owner/credit tables, arbiters and request bitmaps. An analytic
    /// capacity × element-size sum (not an allocator probe), comparable
    /// across configurations: the scaling bench uses it to track how the
    /// electrical domain's footprint grows with the board count.
    pub fn approx_memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let per_vc = size_of::<InputVc>() + self.cfg.buf_depth * size_of::<Flit>();
        let in_vcs = self.cfg.in_ports as usize * self.cfg.vcs as usize;
        let out_vcs = self.cfg.out_ports as usize * self.cfg.vcs as usize;
        size_of::<Self>()
            + in_vcs * per_vc
            + out_vcs * (size_of::<Option<(u16, u8)>>() + size_of::<CreditCounter>())
            + (self.sa_arbiters.capacity() + self.va_arbiters.capacity())
                * size_of::<RoundRobinArbiter>()
            + self.va_requests.capacity()
            + self.sa_requests.capacity()
            + self.sa_input_used.capacity()
            + (self.va_waiting.iter().map(Vec::capacity).sum::<usize>()
                + self.sa_active.iter().map(Vec::capacity).sum::<usize>())
                * size_of::<u16>()
            + (self.va_waiting.capacity() + self.sa_active.capacity()) * size_of::<Vec<u16>>()
    }

    /// Serializes the router's mutable state for a checkpoint.
    ///
    /// Only pipeline state is written: input VC buffers and states, output
    /// VC ownership and credits, arbiter rotors, stats and occupancy
    /// counters. The derived per-port candidate lists (`va_waiting`,
    /// `sa_active`, `rc_candidates`) are *not* persisted — they are exact
    /// functions of the VC states and are rebuilt on restore; their order
    /// only seeds position-addressed arbitration bitmaps, so the canonical
    /// rebuild is behaviourally identical to the live lists.
    pub fn save_state(&self, w: &mut desim::snap::SnapWriter) {
        use desim::snap::Snap;
        w.tag(b"RTRS");
        w.usize(self.inputs.len());
        for port in &self.inputs {
            for ivc in port {
                ivc.buffer.save_state(w);
                ivc.state.save(w);
            }
        }
        w.usize(self.out_vc_owner.len());
        for port in &self.out_vc_owner {
            for owner in port {
                owner.save(w);
            }
        }
        for port in &self.out_credits {
            for c in port {
                c.save_state(w);
            }
        }
        for a in &self.sa_arbiters {
            a.save_state(w);
        }
        for a in &self.va_arbiters {
            a.save_state(w);
        }
        w.u64(self.stats.injected);
        w.u64(self.stats.traversed);
        w.u64(self.stats.sa_stalls);
        w.u64(self.stats.va_stalls);
        w.u64(self.buffered);
        w.u64(self.buffered_peak);
    }

    /// Overlays checkpointed state onto a freshly built router of the same
    /// configuration, then rebuilds the derived candidate lists.
    pub fn load_state(
        &mut self,
        r: &mut desim::snap::SnapReader<'_>,
    ) -> Result<(), desim::snap::SnapError> {
        use desim::snap::Snap;
        r.tag(b"RTRS")?;
        r.len_eq(self.inputs.len(), "router input ports")?;
        for port in &mut self.inputs {
            for ivc in port {
                ivc.buffer.load_state(r)?;
                ivc.state = VcState::load(r)?;
            }
        }
        r.len_eq(self.out_vc_owner.len(), "router output ports")?;
        for port in &mut self.out_vc_owner {
            for owner in port.iter_mut() {
                *owner = Option::<(u16, u8)>::load(r)?;
            }
        }
        for port in &mut self.out_credits {
            for c in port {
                c.load_state(r)?;
            }
        }
        for a in &mut self.sa_arbiters {
            a.load_state(r)?;
        }
        for a in &mut self.va_arbiters {
            a.load_state(r)?;
        }
        self.stats = RouterStats {
            injected: r.u64()?,
            traversed: r.u64()?,
            sa_stalls: r.u64()?,
            va_stalls: r.u64()?,
        };
        self.buffered = r.u64()?;
        self.buffered_peak = r.u64()?;
        self.rebuild_derived()
    }

    /// Recomputes `va_waiting`, `sa_active` and `rc_candidates` from the VC
    /// states, in canonical port-ascending/VC-ascending order.
    fn rebuild_derived(&mut self) -> Result<(), desim::snap::SnapError> {
        for list in &mut self.va_waiting {
            list.clear();
        }
        for list in &mut self.sa_active {
            list.clear();
        }
        self.rc_candidates = 0;
        let vcs = self.cfg.vcs as u16;
        for (p, port) in self.inputs.iter().enumerate() {
            for (v, ivc) in port.iter().enumerate() {
                let requester = p as u16 * vcs + v as u16;
                match ivc.state {
                    VcState::Idle => {
                        if !ivc.buffer.is_empty() {
                            self.rc_candidates += 1;
                        }
                    }
                    VcState::Routing { .. } => self.rc_candidates += 1,
                    VcState::WaitingVc { out_port } => {
                        let out = out_port.index();
                        if out >= self.va_waiting.len() {
                            return Err(desim::snap::SnapError::Mismatch(format!(
                                "VC routed to out-of-range port {out}"
                            )));
                        }
                        self.va_waiting[out].push(requester);
                    }
                    VcState::Active { out_port, .. } => {
                        let out = out_port.index();
                        if out >= self.sa_active.len() {
                            return Err(desim::snap::SnapError::Mismatch(format!(
                                "active VC at out-of-range port {out}"
                            )));
                        }
                        self.sa_active[out].push(requester);
                    }
                }
            }
        }
        Ok(())
    }

    /// Advances one cycle; returns the flits that traversed the switch.
    ///
    /// Convenience wrapper over [`Router::step_into`] that allocates a
    /// fresh result vector — fine for tests and one-off drivers; the
    /// simulation hot loop should pass a reusable buffer to `step_into`.
    pub fn step(&mut self, now: Cycle) -> Vec<Traversal> {
        let mut out = Vec::new();
        self.step_into(now, &mut out);
        out
    }

    /// Advances one cycle, appending the flits that traversed the switch
    /// to `out` (which is *not* cleared — the caller owns it).
    ///
    /// Fast path: with no buffered flits there is no RC/VA/SA work —
    /// every pipeline state either is Idle or is an Active VC waiting for
    /// its next flit — so the cycle is a no-op. All arbitration scratch is
    /// persistent on the router, so a steady-state cycle performs no heap
    /// allocation.
    pub fn step_into(&mut self, now: Cycle, out: &mut Vec<Traversal>) {
        if self.buffered == 0 {
            return;
        }
        self.stage_rc(now);
        self.stage_va(now);
        self.stage_sa_st(now, out);
    }

    /// RC: idle VCs with a head flit start route computation; completed
    /// computations move to WaitingVc.
    ///
    /// The scan is gated on `rc_candidates` (VCs that are `Idle` with a
    /// buffered head, or `Routing`). Gating is exact — not an
    /// approximation — because every transition into a candidate state
    /// bumps the counter, and each VC's RC decision reads only that VC's
    /// state, so scanning or skipping non-candidates is indistinguishable.
    fn stage_rc(&mut self, now: Cycle) {
        if self.rc_candidates == 0 {
            return;
        }
        for port in 0..self.cfg.in_ports {
            for vc in 0..self.cfg.vcs {
                let ivc = &mut self.inputs[port as usize][vc as usize];
                match ivc.state {
                    VcState::Idle => {
                        if let Some(front) = ivc.buffer.front() {
                            assert!(
                                front.kind.is_head(),
                                "non-head flit at front of idle VC (p{port} v{vc})"
                            );
                            ivc.state = VcState::Routing { done_at: now + 1 };
                        }
                    }
                    VcState::Routing { done_at } if now >= done_at => {
                        let Some(front) = ivc.buffer.front() else {
                            // A routing VC without a head flit is corrupt
                            // state; recover by resetting it to Idle.
                            debug_assert!(false, "routing VC lost its head flit");
                            ivc.state = VcState::Idle;
                            self.rc_candidates -= 1;
                            continue;
                        };
                        let dst = front.dst;
                        let out_port = self.route.route(dst);
                        assert!(
                            out_port.index() < self.cfg.out_ports as usize,
                            "route function returned invalid port {out_port}"
                        );
                        ivc.state = VcState::WaitingVc { out_port };
                        self.rc_candidates -= 1;
                        self.va_waiting[out_port.index()]
                            .push(port * self.cfg.vcs as u16 + vc as u16);
                    }
                    _ => {}
                }
            }
        }
    }

    /// VA: WaitingVc inputs request a free output VC at their output port.
    ///
    /// Only ports with a non-empty waiting list are visited; the request
    /// bitmap is seeded from the list (and wiped through it afterwards),
    /// so its bits — the arbiter's only input — are identical to the
    /// full-scan construction regardless of list order.
    fn stage_va(&mut self, now: Cycle) {
        let vcs = self.cfg.vcs as usize;
        // Scratch buffers are persistent fields; take them to sidestep the
        // borrow of `self` inside the loop.
        let mut free = std::mem::take(&mut self.va_free);
        let mut requests = std::mem::take(&mut self.va_requests);
        for out in 0..self.cfg.out_ports as usize {
            if self.va_waiting[out].is_empty() {
                // No requester: the arbiter would see an empty bitmap and
                // hold its rotor, so skipping the port is identical.
                continue;
            }
            // Free output VCs at this port.
            free.clear();
            free.extend((0..vcs).filter(|&v| self.out_vc_owner[out][v].is_none()));
            if free.is_empty() {
                self.stats.va_stalls += self.va_waiting[out].len() as u64;
                continue;
            }
            // Gather requests.
            for &r in &self.va_waiting[out] {
                requests[r as usize] = true;
            }
            // Grant one output VC per arbitration round, up to the number
            // of free VCs.
            for &out_vc in &free {
                let Some(winner) = self.va_arbiters[out].arbitrate(&requests) else {
                    break;
                };
                requests[winner] = false;
                let Some(pos) = self.va_waiting[out]
                    .iter()
                    .position(|&r| r as usize == winner)
                else {
                    debug_assert!(false, "VA winner missing from waiting list");
                    continue;
                };
                self.va_waiting[out].swap_remove(pos);
                self.sa_active[out].push(winner as u16);
                let (p, v) = (winner / vcs, winner % vcs);
                self.out_vc_owner[out][out_vc] = Some((p as u16, v as u8));
                self.inputs[p][v].state = VcState::Active {
                    out_port: PortId(out as u16),
                    out_vc: out_vc as u8,
                    active_at: now + 1,
                };
            }
            // Wipe the losers' bits so the bitmap is clean for the next
            // port without an O(requesters) clear.
            for &r in &self.va_waiting[out] {
                requests[r as usize] = false;
            }
        }
        self.va_free = free;
        self.va_requests = requests;
    }

    /// SA + ST: separable switch allocation, then traversal (appended to
    /// `traversals`).
    ///
    /// Candidates come from the per-port `sa_active` lists; as in VA, the
    /// bitmap bits (and therefore the arbitration outcome, the stall
    /// stats and the traversal order) are exactly those of the full scan.
    fn stage_sa_st(&mut self, now: Cycle, traversals: &mut Vec<Traversal>) {
        let vcs = self.cfg.vcs as usize;
        let mut input_port_used = std::mem::take(&mut self.sa_input_used);
        let mut requests = std::mem::take(&mut self.sa_requests);
        input_port_used.iter_mut().for_each(|u| *u = false);
        for out in 0..self.cfg.out_ports as usize {
            if self.sa_active[out].is_empty() {
                continue;
            }
            let mut requesters = 0u64;
            for &r in &self.sa_active[out] {
                let (p, v) = (r as usize / vcs, r as usize % vcs);
                if input_port_used[p] {
                    continue;
                }
                let ivc = &self.inputs[p][v];
                let VcState::Active {
                    out_vc, active_at, ..
                } = ivc.state
                else {
                    debug_assert!(false, "sa_active entry not Active");
                    continue;
                };
                if now >= active_at
                    && !ivc.buffer.is_empty()
                    && self.out_credits[out][out_vc as usize].can_send()
                {
                    requests[r as usize] = true;
                    requesters += 1;
                }
            }
            if requesters == 0 {
                continue;
            }
            let winner = self.sa_arbiters[out].arbitrate(&requests);
            // Wipe the set bits before acting on the winner so the bitmap
            // is clean for the next port.
            for &r in &self.sa_active[out] {
                requests[r as usize] = false;
            }
            let Some(winner) = winner else {
                // Unreachable (`requesters` guaranteed one); skip the port
                // rather than corrupting switch state.
                debug_assert!(false, "arbitration failed with requests pending");
                continue;
            };
            self.stats.sa_stalls += requesters - 1;
            let (p, v) = (winner / vcs, winner % vcs);
            input_port_used[p] = true;
            let ivc = &mut self.inputs[p][v];
            let VcState::Active { out_vc, .. } = ivc.state else {
                debug_assert!(false, "SA winner was not Active");
                continue;
            };
            let Some(flit) = ivc.buffer.pop() else {
                debug_assert!(false, "SA winner had no flit buffered");
                continue;
            };
            self.buffered -= 1;
            self.out_credits[out][out_vc as usize].consume();
            self.stats.traversed += 1;
            if flit.kind.is_tail() {
                // Release the output VC and return the input VC to Idle;
                // the next head (if already buffered) starts RC next cycle.
                self.out_vc_owner[out][out_vc as usize] = None;
                ivc.state = VcState::Idle;
                if let Some(pos) = self.sa_active[out]
                    .iter()
                    .position(|&r| r as usize == winner)
                {
                    self.sa_active[out].swap_remove(pos);
                }
                if !ivc.buffer.is_empty() {
                    // The next packet's head is already queued: RC work.
                    self.rc_candidates += 1;
                }
            }
            traversals.push(Traversal {
                out_port: PortId(out as u16),
                out_vc,
                flit,
                in_port: PortId(p as u16),
                in_vc: v as u8,
            });
        }
        self.sa_input_used = input_port_used;
        self.sa_requests = requests;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{NodeId, PacketId};
    use crate::packet::Packet;
    use crate::routing::TableRoute;

    /// 2-in, 2-out router: node 0 → port 0, node 1 → port 1.
    fn small(buf_depth: usize, downstream: u32) -> Router {
        Router::new(
            RouterConfig {
                in_ports: 2,
                out_ports: 2,
                vcs: 2,
                buf_depth,
                downstream_depth: downstream,
            },
            Box::new(TableRoute::new(vec![PortId(0), PortId(1)])),
        )
    }

    fn packet(id: u64, dst: u32, flits: u16) -> Vec<crate::flit::Flit> {
        Packet {
            id: PacketId(id),
            src: NodeId(0),
            dst: NodeId(dst),
            flits,
            injected_at: 0,
            labelled: false,
        }
        .flitize()
    }

    /// Drives the router, injecting flits as space allows, collecting
    /// traversals, and returning credits after `credit_delay` cycles.
    fn run(
        r: &mut Router,
        mut pending: Vec<(PortId, u8, Vec<crate::flit::Flit>)>,
        cycles: Cycle,
    ) -> Vec<(Cycle, Traversal)> {
        let mut out = Vec::new();
        let mut credit_returns: Vec<(Cycle, PortId, u8)> = Vec::new();
        for now in 0..cycles {
            // Return credits due now (downstream instantly consumes).
            credit_returns.retain(|&(t, p, v)| {
                if t <= now {
                    r.credit(p, v);
                    false
                } else {
                    true
                }
            });
            for (port, vc, flits) in &mut pending {
                while !flits.is_empty() && r.can_accept(*port, *vc) {
                    let f = flits.remove(0);
                    r.inject(*port, *vc, f);
                }
            }
            for t in r.step(now) {
                credit_returns.push((now + 1, t.out_port, t.out_vc));
                out.push((now, t));
            }
        }
        out
    }

    #[test]
    fn single_packet_traverses_in_order() {
        let mut r = small(4, 4);
        let flits = packet(1, 1, 4);
        let log = run(&mut r, vec![(PortId(0), 0, flits)], 30);
        assert_eq!(log.len(), 4);
        // All to output port 1, in sequence order.
        assert!(log.iter().all(|(_, t)| t.out_port == PortId(1)));
        let seqs: Vec<u16> = log.iter().map(|(_, t)| t.flit.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        // Head needed RC (1) + VA (1) before SA: first traversal at cycle ≥ 2.
        assert!(log[0].0 >= 2, "head traversed too early at {}", log[0].0);
        assert_eq!(r.stats().traversed, 4);
        assert_eq!(r.stats().injected, 4);
    }

    #[test]
    fn buffered_peak_tracks_the_window_high_water_mark() {
        let mut r = small(4, 4);
        let flits = packet(1, 1, 4);
        // Fill one input VC: occupancy and peak both reach 4.
        for f in flits {
            r.inject(PortId(0), 0, f);
        }
        assert_eq!(r.buffered_flits(), 4);
        assert_eq!(r.buffered_peak(), 4);
        // Drain completely; the peak survives until taken.
        let mut drained = 0;
        for now in 0..30 {
            let n = r.step(now).len();
            drained += n;
            for _ in 0..n {
                r.credit(PortId(1), 0);
            }
        }
        assert_eq!(drained, 4);
        assert_eq!(r.buffered_flits(), 0);
        assert_eq!(r.buffered_peak(), 4);
        // Taking the peak restarts it from the current (empty) occupancy.
        assert_eq!(r.take_buffered_peak(), 4);
        assert_eq!(r.buffered_peak(), 0);
    }

    #[test]
    fn single_flit_buffer_still_makes_progress() {
        // The paper's configuration: 1-flit buffers, 1 downstream slot,
        // 1-cycle credit return. Throughput is credit-limited but nonzero.
        let mut r = small(1, 1);
        let flits = packet(1, 1, 8);
        let log = run(&mut r, vec![(PortId(0), 0, flits)], 100);
        assert_eq!(log.len(), 8, "all 8 flits must eventually traverse");
        let seqs: Vec<u16> = log.iter().map(|(_, t)| t.flit.seq).collect();
        assert_eq!(seqs, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn two_flows_to_different_outputs_do_not_interfere() {
        let mut r = small(4, 8);
        let a = packet(1, 0, 4);
        let b = packet(2, 1, 4);
        let log = run(&mut r, vec![(PortId(0), 0, a), (PortId(1), 0, b)], 40);
        assert_eq!(log.len(), 8);
        let to0 = log.iter().filter(|(_, t)| t.out_port == PortId(0)).count();
        let to1 = log.iter().filter(|(_, t)| t.out_port == PortId(1)).count();
        assert_eq!((to0, to1), (4, 4));
    }

    #[test]
    fn two_flows_share_one_output_fairly() {
        let mut r = small(4, 8);
        let a = packet(1, 1, 6);
        let b = packet(2, 1, 6);
        // Different input ports, same destination.
        let log = run(&mut r, vec![(PortId(0), 0, a), (PortId(1), 0, b)], 100);
        assert_eq!(log.len(), 12);
        // Output port serialises: no cycle emits two flits on port 1.
        let mut cycles_seen = std::collections::HashSet::new();
        for (c, t) in &log {
            assert_eq!(t.out_port, PortId(1));
            assert!(
                cycles_seen.insert(*c),
                "two flits on one output in cycle {c}"
            );
        }
        // Per-packet flit order is preserved.
        for pid in [1u64, 2] {
            let seqs: Vec<u16> = log
                .iter()
                .filter(|(_, t)| t.flit.packet == PacketId(pid))
                .map(|(_, t)| t.flit.seq)
                .collect();
            assert_eq!(seqs, (0..6).collect::<Vec<_>>());
        }
    }

    #[test]
    fn vcs_interleave_packets_on_one_input() {
        let mut r = small(4, 8);
        let a = packet(1, 1, 4);
        let b = packet(2, 0, 4);
        let log = run(&mut r, vec![(PortId(0), 0, a), (PortId(0), 1, b)], 100);
        assert_eq!(log.len(), 8);
        // One input port: at most one traversal per cycle overall.
        let mut cycles_seen = std::collections::HashSet::new();
        for (c, _) in &log {
            assert!(cycles_seen.insert(*c));
        }
    }

    #[test]
    fn no_credit_no_traversal() {
        let mut r = small(4, 1);
        let flits = packet(1, 1, 2);
        for f in flits {
            r.inject(PortId(0), 0, f);
        }
        // Step without ever returning credits: only 1 flit (the single
        // downstream slot) may traverse.
        let mut count = 0;
        for now in 0..20 {
            count += r.step(now).len();
        }
        assert_eq!(count, 1);
        assert_eq!(r.credits_available(PortId(1), 0), 0);
        // Returning the credit unblocks the tail.
        r.credit(PortId(1), 0);
        let mut more = 0;
        for now in 20..30 {
            more += r.step(now).len();
        }
        assert_eq!(more, 1);
    }

    #[test]
    fn tail_releases_output_vc() {
        let mut r = small(4, 8);
        let a = packet(1, 1, 2);
        let log = run(&mut r, vec![(PortId(0), 0, a)], 20);
        assert_eq!(log.len(), 2);
        // After the tail, all output VCs at port 1 are free again.
        for v in 0..2u8 {
            assert_eq!(r.out_vc_owner[1][v as usize], None);
        }
        // A second packet reuses the VC.
        let b = packet(2, 1, 2);
        let log2 = run(&mut r, vec![(PortId(0), 0, b)], 20);
        assert_eq!(log2.len(), 2);
    }

    #[test]
    fn port_occupancy_reflects_buffers() {
        let mut r = small(2, 1);
        let flit = packet(1, 1, 1).remove(0);
        r.inject(PortId(0), 0, flit);
        assert!((r.input_occupancy(PortId(0), 0) - 0.5).abs() < 1e-12);
        assert!((r.port_occupancy(PortId(0)) - 0.25).abs() < 1e-12);
        assert_eq!(r.input_space(PortId(0), 0), 1);
    }

    #[test]
    #[should_panic(expected = "non-head flit")]
    fn body_flit_first_is_a_protocol_error() {
        let mut r = small(4, 4);
        let mut flits = packet(1, 1, 3);
        let body = flits.remove(1);
        r.inject(PortId(0), 0, body);
        r.step(0);
    }

    #[test]
    fn per_port_downstream_depth() {
        let mut r = small(4, 1);
        r.set_downstream_depth(PortId(1), 16);
        assert_eq!(r.credits_available(PortId(1), 0), 16);
        assert_eq!(r.credits_available(PortId(0), 0), 1);
        // A whole 8-flit packet now flows without credit returns.
        let flits = packet(1, 1, 8);
        let log = run(&mut r, vec![(PortId(0), 0, flits)], 40);
        assert_eq!(log.len(), 8);
    }

    #[test]
    fn stats_accumulate() {
        let mut r = small(4, 8);
        let a = packet(1, 1, 4);
        let b = packet(2, 1, 4);
        run(&mut r, vec![(PortId(0), 0, a), (PortId(1), 0, b)], 100);
        let s = r.stats();
        assert_eq!(s.injected, 8);
        assert_eq!(s.traversed, 8);
        assert!(s.sa_stalls > 0, "two flows into one port must conflict");
    }
}
