//! Simulation phase management: warm-up → measurement → drain.
//!
//! The paper's methodology (§4): the simulator is warmed up under load until
//! steady state, a sample of packets injected during a *measurement interval*
//! is labelled, and the run continues until every labelled packet has been
//! delivered. [`PhasePlan`] encodes the schedule; [`PhaseTracker`] tracks the
//! outstanding labelled packets so the run knows when it may stop.

use crate::Cycle;

/// The three phases of a steady-state simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Network filling up; no statistics are recorded.
    Warmup,
    /// Packets injected now are labelled and measured.
    Measure,
    /// No more labelled packets; run continues until all labelled packets
    /// drain (unlabelled traffic keeps being injected to hold the load).
    Drain,
}

/// The phase schedule of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhasePlan {
    /// Cycles of warm-up before measurement starts.
    pub warmup: Cycle,
    /// Cycles of the measurement interval.
    pub measure: Cycle,
    /// Hard upper bound on total run length (drain included), as a safety
    /// net against saturated networks that never drain.
    pub max_cycles: Cycle,
}

impl PhasePlan {
    /// A plan with the given warm-up and measurement windows; the drain bound
    /// defaults to ten times the measured portion.
    pub fn new(warmup: Cycle, measure: Cycle) -> Self {
        Self {
            warmup,
            measure,
            max_cycles: (warmup + measure).saturating_mul(10),
        }
    }

    /// Overrides the hard run-length bound.
    pub fn with_max_cycles(mut self, max: Cycle) -> Self {
        self.max_cycles = max;
        self
    }

    /// Phase active at cycle `t` (ignoring drain completion).
    pub fn phase_at(&self, t: Cycle) -> Phase {
        if t < self.warmup {
            Phase::Warmup
        } else if t < self.warmup + self.measure {
            Phase::Measure
        } else {
            Phase::Drain
        }
    }

    /// First cycle of the measurement interval.
    pub fn measure_start(&self) -> Cycle {
        self.warmup
    }

    /// First cycle after the measurement interval.
    pub fn measure_end(&self) -> Cycle {
        self.warmup + self.measure
    }
}

/// Tracks labelled-packet completion across a run.
#[derive(Debug, Default, Clone)]
pub struct PhaseTracker {
    labelled_injected: u64,
    labelled_delivered: u64,
}

impl PhaseTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the injection of a labelled (measured) packet.
    pub fn inject_labelled(&mut self) {
        self.labelled_injected += 1;
    }

    /// Records the delivery of a labelled packet.
    pub fn deliver_labelled(&mut self) {
        self.labelled_delivered += 1;
        debug_assert!(self.labelled_delivered <= self.labelled_injected);
    }

    /// Labelled packets injected so far.
    pub fn injected(&self) -> u64 {
        self.labelled_injected
    }

    /// Labelled packets delivered so far.
    pub fn delivered(&self) -> u64 {
        self.labelled_delivered
    }

    /// Labelled packets still in flight.
    pub fn outstanding(&self) -> u64 {
        self.labelled_injected - self.labelled_delivered
    }

    /// True when the run may stop: we are in the drain phase and every
    /// labelled packet has been delivered.
    pub fn complete(&self, plan: &PhasePlan, now: Cycle) -> bool {
        plan.phase_at(now) == Phase::Drain && self.outstanding() == 0
    }
}

impl crate::snap::Snap for PhaseTracker {
    fn save(&self, w: &mut crate::snap::SnapWriter) {
        w.u64(self.labelled_injected);
        w.u64(self.labelled_delivered);
    }
    fn load(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        let labelled_injected = r.u64()?;
        let labelled_delivered = r.u64()?;
        if labelled_delivered > labelled_injected {
            return Err(crate::snap::SnapError::Format(
                "more labelled deliveries than injections".to_string(),
            ));
        }
        Ok(Self {
            labelled_injected,
            labelled_delivered,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_partition_the_timeline() {
        let plan = PhasePlan::new(100, 50);
        assert_eq!(plan.phase_at(0), Phase::Warmup);
        assert_eq!(plan.phase_at(99), Phase::Warmup);
        assert_eq!(plan.phase_at(100), Phase::Measure);
        assert_eq!(plan.phase_at(149), Phase::Measure);
        assert_eq!(plan.phase_at(150), Phase::Drain);
        assert_eq!(plan.measure_start(), 100);
        assert_eq!(plan.measure_end(), 150);
    }

    #[test]
    fn default_max_cycles_is_generous() {
        let plan = PhasePlan::new(1000, 2000);
        assert_eq!(plan.max_cycles, 30_000);
        let plan = plan.with_max_cycles(5000);
        assert_eq!(plan.max_cycles, 5000);
    }

    #[test]
    fn tracker_counts_outstanding() {
        let plan = PhasePlan::new(10, 10);
        let mut tr = PhaseTracker::new();
        tr.inject_labelled();
        tr.inject_labelled();
        assert_eq!(tr.outstanding(), 2);
        assert!(!tr.complete(&plan, 25)); // drain but packets in flight
        tr.deliver_labelled();
        tr.deliver_labelled();
        assert!(tr.complete(&plan, 25));
        assert!(!tr.complete(&plan, 15)); // still measuring
        assert_eq!(tr.injected(), 2);
        assert_eq!(tr.delivered(), 2);
    }

    #[test]
    fn zero_labelled_completes_immediately_in_drain() {
        let plan = PhasePlan::new(10, 10);
        let tr = PhaseTracker::new();
        assert!(tr.complete(&plan, 20));
        assert!(!tr.complete(&plan, 0));
    }
}
