//! Process-oriented simulation (the YACSIM programming model).
//!
//! YACSIM — the paper's simulation substrate — is process-oriented: model
//! code is written as sequential *processes* that delay for simulated time
//! and synchronise on *signals*. This module provides that model on top of
//! the event kernel, with poll-based resumable processes instead of
//! coroutines (stable Rust, no unsafe):
//!
//! ```
//! use desim::process::{Process, ProcessCtx, Scheduler, SignalId, Yield};
//!
//! struct Blinker { count: u32 }
//! impl Process for Blinker {
//!     fn resume(&mut self, ctx: &mut ProcessCtx) -> Yield {
//!         if self.count == 0 {
//!             return Yield::Done;
//!         }
//!         self.count -= 1;
//!         ctx.trace(format!("blink at {}", ctx.now()));
//!         Yield::Delay(10)
//!     }
//! }
//!
//! let mut sched = Scheduler::new();
//! sched.spawn(Box::new(Blinker { count: 3 }));
//! sched.run();
//! assert_eq!(sched.now(), 30); // blinks at 0, 10, 20; terminates at 30
//! ```

use crate::sim::Simulator;
use crate::Cycle;
use std::collections::HashMap;

/// What a process does next after a resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Yield {
    /// Sleep for the given number of cycles, then resume.
    Delay(Cycle),
    /// Block until the signal fires.
    Wait(SignalId),
    /// Terminate the process.
    Done,
}

/// A named synchronisation signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignalId(pub u32);

/// Handle to a spawned process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessId(pub u32);

/// Context passed to a process on each resume.
pub struct ProcessCtx<'a> {
    now: Cycle,
    pid: ProcessId,
    fired: &'a mut Vec<SignalId>,
    trace: &'a mut Vec<(Cycle, ProcessId, String)>,
}

impl ProcessCtx<'_> {
    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// This process's id.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Fires a signal: every process waiting on it resumes this cycle
    /// (after the current process yields).
    pub fn fire(&mut self, signal: SignalId) {
        self.fired.push(signal);
    }

    /// Appends a trace record.
    pub fn trace(&mut self, message: String) {
        self.trace.push((self.now, self.pid, message));
    }
}

/// A resumable process.
pub trait Process {
    /// Runs until the next yield point.
    fn resume(&mut self, ctx: &mut ProcessCtx) -> Yield;
}

enum Slot {
    Running(Box<dyn Process>),
    Waiting(Box<dyn Process>, SignalId),
    Finished,
    /// Temporarily taken out while resuming.
    Vacant,
}

/// Cooperative process scheduler over the event kernel.
pub struct Scheduler {
    sim: Simulator<ProcessId>,
    slots: Vec<Slot>,
    trace: Vec<(Cycle, ProcessId, String)>,
    /// Latched signal counts: a fire with no waiter is remembered, so a
    /// later `Wait` on the same signal consumes it immediately (semaphore
    /// semantics — no lost wake-ups).
    latched: HashMap<SignalId, u32>,
}

impl Default for Scheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler {
    /// Creates an empty scheduler at cycle 0.
    pub fn new() -> Self {
        Self {
            sim: Simulator::new(),
            slots: Vec::new(),
            trace: Vec::new(),
            latched: HashMap::new(),
        }
    }

    /// Spawns a process; it first resumes at the current time.
    pub fn spawn(&mut self, p: Box<dyn Process>) -> ProcessId {
        let pid = ProcessId(self.slots.len() as u32);
        self.slots.push(Slot::Running(p));
        self.sim.schedule(self.sim.now(), pid);
        pid
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.sim.now()
    }

    /// Whether the process has terminated.
    pub fn is_finished(&self, pid: ProcessId) -> bool {
        matches!(self.slots[pid.0 as usize], Slot::Finished)
    }

    /// The accumulated trace records.
    pub fn trace(&self) -> &[(Cycle, ProcessId, String)] {
        &self.trace
    }

    /// Runs until no process is runnable (all finished or deadlocked on
    /// signals nobody will fire). Returns the number of resumes executed.
    pub fn run(&mut self) -> u64 {
        self.run_until(Cycle::MAX)
    }

    /// Runs until `deadline` or quiescence; returns the resume count.
    pub fn run_until(&mut self, deadline: Cycle) -> u64 {
        let mut resumes = 0;
        while let Some(t) = self.sim.peek_time() {
            if t > deadline {
                break;
            }
            let (now, pid) = self.sim.next_event().expect("peeked");
            let slot = std::mem::replace(&mut self.slots[pid.0 as usize], Slot::Vacant);
            let mut proc_box = match slot {
                Slot::Running(p) => p,
                // A stale wake-up for a waiting/finished process (e.g. it
                // was re-scheduled by a signal and a delay simultaneously)
                // is ignored.
                other => {
                    self.slots[pid.0 as usize] = other;
                    continue;
                }
            };
            let mut fired = Vec::new();
            let outcome = {
                let mut ctx = ProcessCtx {
                    now,
                    pid,
                    fired: &mut fired,
                    trace: &mut self.trace,
                };
                proc_box.resume(&mut ctx)
            };
            resumes += 1;
            self.slots[pid.0 as usize] = match outcome {
                Yield::Delay(d) => {
                    self.sim.schedule(now + d, pid);
                    Slot::Running(proc_box)
                }
                Yield::Wait(sig) => {
                    // A latched fire satisfies the wait immediately.
                    let count = self.latched.entry(sig).or_insert(0);
                    if *count > 0 {
                        *count -= 1;
                        self.sim.schedule(now, pid);
                        Slot::Running(proc_box)
                    } else {
                        Slot::Waiting(proc_box, sig)
                    }
                }
                Yield::Done => Slot::Finished,
            };
            // Deliver fired signals: one waiting process per fire becomes
            // runnable this cycle (FIFO by pid); a fire with no waiter is
            // latched.
            for sig in fired {
                let mut delivered = false;
                for (i, slot) in self.slots.iter_mut().enumerate() {
                    if let Slot::Waiting(_, s) = slot {
                        if *s == sig {
                            let taken = std::mem::replace(slot, Slot::Vacant);
                            if let Slot::Waiting(p, _) = taken {
                                *slot = Slot::Running(p);
                                self.sim.schedule(now, ProcessId(i as u32));
                            }
                            delivered = true;
                            break;
                        }
                    }
                }
                if !delivered {
                    *self.latched.entry(sig).or_insert(0) += 1;
                }
            }
        }
        resumes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Delayer {
        period: Cycle,
        remaining: u32,
        log: SignalId,
    }
    impl Process for Delayer {
        fn resume(&mut self, ctx: &mut ProcessCtx) -> Yield {
            if self.remaining == 0 {
                ctx.fire(self.log);
                return Yield::Done;
            }
            self.remaining -= 1;
            ctx.trace(format!("tick {}", self.remaining));
            Yield::Delay(self.period)
        }
    }

    #[test]
    fn delays_advance_time() {
        let mut s = Scheduler::new();
        let pid = s.spawn(Box::new(Delayer {
            period: 7,
            remaining: 3,
            log: SignalId(0),
        }));
        let resumes = s.run();
        assert_eq!(resumes, 4); // 3 ticks + the Done resume
        assert_eq!(s.now(), 21);
        assert!(s.is_finished(pid));
        assert_eq!(s.trace().len(), 3);
        assert_eq!(s.trace()[0].0, 0);
        assert_eq!(s.trace()[2].0, 14);
    }

    struct Waiter {
        sig: SignalId,
        woke_at: Option<Cycle>,
        started: bool,
    }
    impl Process for Waiter {
        fn resume(&mut self, ctx: &mut ProcessCtx) -> Yield {
            if !self.started {
                self.started = true;
                return Yield::Wait(self.sig);
            }
            self.woke_at = Some(ctx.now());
            Yield::Done
        }
    }

    struct Firer {
        sig: SignalId,
        at_delay: Cycle,
        fired: bool,
    }
    impl Process for Firer {
        fn resume(&mut self, ctx: &mut ProcessCtx) -> Yield {
            if !self.fired {
                self.fired = true;
                return Yield::Delay(self.at_delay);
            }
            ctx.fire(self.sig);
            Yield::Done
        }
    }

    #[test]
    fn signal_wakes_waiter_at_fire_time() {
        let mut s = Scheduler::new();
        let sig = SignalId(9);
        let w = s.spawn(Box::new(Waiter {
            sig,
            woke_at: None,
            started: false,
        }));
        s.spawn(Box::new(Firer {
            sig,
            at_delay: 42,
            fired: false,
        }));
        s.run();
        assert!(s.is_finished(w));
        assert_eq!(s.now(), 42);
    }

    #[test]
    fn unfired_signal_deadlocks_quietly() {
        let mut s = Scheduler::new();
        let w = s.spawn(Box::new(Waiter {
            sig: SignalId(1),
            woke_at: None,
            started: false,
        }));
        s.run();
        // Quiescent: the waiter is parked, not finished.
        assert!(!s.is_finished(w));
        assert_eq!(s.now(), 0);
    }

    /// A token-ring of N processes: each waits for its signal, then fires
    /// the next one after a 1-cycle delay — the LS lock-step in miniature.
    struct RingNode {
        my_sig: SignalId,
        next_sig: SignalId,
        rounds: u32,
        state: u8,
    }
    impl Process for RingNode {
        fn resume(&mut self, ctx: &mut ProcessCtx) -> Yield {
            match self.state {
                0 => {
                    self.state = 1;
                    Yield::Wait(self.my_sig)
                }
                1 => {
                    ctx.fire(self.next_sig);
                    self.rounds -= 1;
                    if self.rounds == 0 {
                        Yield::Done
                    } else {
                        self.state = 2;
                        Yield::Delay(1)
                    }
                }
                _ => {
                    self.state = 1;
                    Yield::Wait(self.my_sig)
                }
            }
        }
    }

    struct Kickoff {
        sig: SignalId,
        done: bool,
    }
    impl Process for Kickoff {
        fn resume(&mut self, ctx: &mut ProcessCtx) -> Yield {
            if self.done {
                return Yield::Done;
            }
            self.done = true;
            ctx.fire(self.sig);
            Yield::Done
        }
    }

    #[test]
    fn token_ring_circulates() {
        let n = 4u32;
        let rounds = 3u32;
        let mut s = Scheduler::new();
        let pids: Vec<ProcessId> = (0..n)
            .map(|i| {
                s.spawn(Box::new(RingNode {
                    my_sig: SignalId(i),
                    next_sig: SignalId((i + 1) % n),
                    rounds,
                    state: 0,
                }))
            })
            .collect();
        s.spawn(Box::new(Kickoff {
            sig: SignalId(0),
            done: false,
        }));
        s.run();
        for pid in pids {
            assert!(s.is_finished(pid), "{pid:?} still parked");
        }
    }
}
