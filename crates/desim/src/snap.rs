//! Binary state-snapshot substrate for checkpoint/restore.
//!
//! Long-horizon runs must survive being killed: the simulator periodically
//! serializes its full mutable state and a resumed process continues
//! byte-identically to an uninterrupted one. This module is the byte-level
//! layer every crate's `save_state`/`load_state` hooks are written against:
//!
//! * [`SnapWriter`] / [`SnapReader`] — little-endian primitive encoding
//!   with typed truncation errors (no panics on corrupt input),
//! * [`Snap`] — the round-trip trait for value types (flits, packets, RNG
//!   streams); container structs instead expose `load_state(&mut self)`
//!   overlay restores so config-derived geometry (capacities, route
//!   tables) is rebuilt from the config rather than persisted,
//! * [`fnv1a`] / [`fnv1a_update`] — the FNV-1a-64 checksum the snapshot
//!   format carries, the same discipline as the `.ertr` trace format.
//!
//! Restore is *strict*: every length read from the stream must match the
//! geometry of the freshly-built target, and every byte of the payload
//! must be consumed. A mismatch is a typed [`SnapError`], never a panic —
//! the checkpoint layer treats any error as "this snapshot is bad, fall
//! back to the previous one".

use crate::Cycle;

/// Typed error from snapshot encoding or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The byte stream is malformed (truncation, bad tag, trailing bytes).
    Format(String),
    /// The snapshot declares a format version this build does not read.
    Version(u16),
    /// The stored checksum does not match the payload.
    Checksum {
        /// Checksum stored in the snapshot.
        stored: u64,
        /// Checksum computed over the payload.
        computed: u64,
    },
    /// The snapshot was taken under a different configuration than the
    /// system it is being restored into.
    Mismatch(String),
    /// Filesystem I/O failed (message of the underlying error).
    Io(String),
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Format(msg) => write!(f, "malformed snapshot: {msg}"),
            SnapError::Version(v) => write!(f, "unsupported snapshot version {v}"),
            SnapError::Checksum { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            SnapError::Mismatch(msg) => write!(f, "snapshot/config mismatch: {msg}"),
            SnapError::Io(msg) => write!(f, "snapshot I/O failed: {msg}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// FNV-1a-64 offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds `bytes` into a running FNV-1a-64 hash (start from [`FNV_OFFSET`]).
#[inline]
pub fn fnv1a_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One-shot FNV-1a-64 over `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_update(FNV_OFFSET, bytes)
}

/// Append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes a 4-byte section tag — cheap structure markers that turn a
    /// mis-aligned decode into an immediate, located error instead of a
    /// silent garbage read.
    pub fn tag(&mut self, t: &[u8; 4]) {
        self.buf.extend_from_slice(t);
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` by its IEEE-754 bits — restores are bit-exact.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes raw bytes (caller handles length framing).
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

/// Sequential reader with typed truncation errors.
pub struct SnapReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Wraps a byte slice.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Current read offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Errors unless every byte has been consumed.
    pub fn expect_end(&self) -> Result<(), SnapError> {
        if self.remaining() != 0 {
            return Err(SnapError::Format(format!(
                "{} trailing bytes after snapshot payload",
                self.remaining()
            )));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| {
                SnapError::Format(format!("truncated at offset {} (need {n})", self.pos))
            })?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads and verifies a 4-byte section tag.
    pub fn tag(&mut self, t: &[u8; 4]) -> Result<(), SnapError> {
        let at = self.pos;
        let got = self.take(4)?;
        if got != t {
            return Err(SnapError::Format(format!(
                "expected section {:?} at offset {at}, found {:?}",
                String::from_utf8_lossy(t),
                String::from_utf8_lossy(got)
            )));
        }
        Ok(())
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool (strict: only 0 or 1).
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapError::Format(format!("bad bool byte {b:#x}"))),
        }
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `usize` (stored as `u64`; errors on overflow).
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapError::Format(format!("usize overflow ({v})")))
    }

    /// Reads an `f64` from its stored bits.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length that must equal `expect` — the overlay-restore
    /// geometry check (`what` names the field in the error).
    pub fn len_eq(&mut self, expect: usize, what: &str) -> Result<usize, SnapError> {
        let n = self.usize()?;
        if n != expect {
            return Err(SnapError::Mismatch(format!(
                "{what}: snapshot has {n} elements, target expects {expect}"
            )));
        }
        Ok(n)
    }

    /// Reads a length bounded by `max` (guards pre-allocation against a
    /// corrupt stream claiming absurd sizes).
    pub fn len_at_most(&mut self, max: usize, what: &str) -> Result<usize, SnapError> {
        let n = self.usize()?;
        if n > max {
            return Err(SnapError::Format(format!(
                "{what}: implausible length {n} (cap {max})"
            )));
        }
        Ok(n)
    }
}

/// Round-trip serialization for value types. Container structs whose
/// geometry comes from the configuration implement `load_state(&mut
/// self)` overlays instead (see the module docs).
pub trait Snap: Sized {
    /// Appends this value's encoding.
    fn save(&self, w: &mut SnapWriter);
    /// Decodes one value.
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;
}

impl Snap for u8 {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(*self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.u8()
    }
}

impl Snap for u16 {
    fn save(&self, w: &mut SnapWriter) {
        w.u16(*self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.u16()
    }
}

impl Snap for u32 {
    fn save(&self, w: &mut SnapWriter) {
        w.u32(*self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.u32()
    }
}

impl Snap for u64 {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(*self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.u64()
    }
}

impl Snap for usize {
    fn save(&self, w: &mut SnapWriter) {
        w.usize(*self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.usize()
    }
}

impl Snap for bool {
    fn save(&self, w: &mut SnapWriter) {
        w.bool(*self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.bool()
    }
}

impl Snap for f64 {
    fn save(&self, w: &mut SnapWriter) {
        w.f64(*self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.f64()
    }
}

impl<T: Snap> Snap for Option<T> {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.save(w);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::load(r)?)),
            b => Err(SnapError::Format(format!("bad Option tag {b:#x}"))),
        }
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn save(&self, w: &mut SnapWriter) {
        self.0.save(w);
        self.1.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::load(r)?, B::load(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap> Snap for (A, B, C) {
    fn save(&self, w: &mut SnapWriter) {
        self.0.save(w);
        self.1.save(w);
        self.2.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::load(r)?, B::load(r)?, C::load(r)?))
    }
}

/// Elements a corrupt stream may claim before allocation is refused.
/// Generous for any real snapshot (hundreds of millions), tiny next to
/// address space.
const MAX_SEQ: usize = 1 << 30;

impl<T: Snap> Snap for Vec<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.usize(self.len());
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len_at_most(MAX_SEQ, "Vec")?;
        let mut out = Vec::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            out.push(T::load(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for std::collections::VecDeque<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.usize(self.len());
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len_at_most(MAX_SEQ, "VecDeque")?;
        let mut out = std::collections::VecDeque::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            out.push_back(T::load(r)?);
        }
        Ok(out)
    }
}

impl Snap for String {
    fn save(&self, w: &mut SnapWriter) {
        w.usize(self.len());
        w.bytes(self.as_bytes());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len_at_most(1 << 20, "String")?;
        let bytes = r.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapError::Format("string is not UTF-8".to_string()))
    }
}

/// Overwrites `dst` (fixed geometry) element-wise from the stream; the
/// stored length must match `dst.len()` exactly.
pub fn load_slice_into<T: Snap>(
    r: &mut SnapReader<'_>,
    dst: &mut [T],
    what: &str,
) -> Result<(), SnapError> {
    r.len_eq(dst.len(), what)?;
    for v in dst.iter_mut() {
        *v = T::load(r)?;
    }
    Ok(())
}

/// Saves a slice with its length (the mirror of [`load_slice_into`]).
pub fn save_slice<T: Snap>(w: &mut SnapWriter, src: &[T]) {
    w.usize(src.len());
    for v in src {
        v.save(w);
    }
}

/// Loads an owned `Vec` whose stored length must equal `expect` — the
/// geometry-checked twin of `Vec::<T>::load` for fields whose length is
/// config-derived (RNG stream banks, per-flow flag vectors).
pub fn load_vec_exact<T: Snap>(
    r: &mut SnapReader<'_>,
    expect: usize,
    what: &str,
) -> Result<Vec<T>, SnapError> {
    r.len_eq(expect, what)?;
    let mut out = Vec::with_capacity(expect);
    for _ in 0..expect {
        out.push(T::load(r)?);
    }
    Ok(out)
}

/// `Cycle` already encodes as `u64`; re-exported alias for hook clarity.
pub type SnapCycle = Cycle;

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.f64(-0.0);
        w.bool(true);
        w.usize(42);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.bool().unwrap());
        assert_eq!(r.usize().unwrap(), 42);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let mut w = SnapWriter::new();
        w.u64(1);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..4]);
        assert!(matches!(r.u64(), Err(SnapError::Format(_))));
    }

    #[test]
    fn bad_bool_and_option_tags_rejected() {
        let bytes = [9u8];
        assert!(matches!(
            SnapReader::new(&bytes).bool(),
            Err(SnapError::Format(_))
        ));
        assert!(matches!(
            <Option<u8> as Snap>::load(&mut SnapReader::new(&bytes)),
            Err(SnapError::Format(_))
        ));
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<(u32, bool)> = vec![(1, true), (2, false)];
        let mut dq = std::collections::VecDeque::new();
        dq.push_back(3u64);
        dq.push_back(4u64);
        let opt: Option<f64> = Some(1.5);
        let s = "hot\"spot λ".to_string();
        let mut w = SnapWriter::new();
        v.save(&mut w);
        dq.save(&mut w);
        opt.save(&mut w);
        s.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(Vec::<(u32, bool)>::load(&mut r).unwrap(), v);
        assert_eq!(std::collections::VecDeque::<u64>::load(&mut r).unwrap(), dq);
        assert_eq!(Option::<f64>::load(&mut r).unwrap(), opt);
        assert_eq!(String::load(&mut r).unwrap(), s);
        r.expect_end().unwrap();
    }

    #[test]
    fn tags_catch_misalignment() {
        let mut w = SnapWriter::new();
        w.tag(b"BRDS");
        w.u8(1);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(r.tag(b"SRSQ").is_err());
        let mut r = SnapReader::new(&bytes);
        r.tag(b"BRDS").unwrap();
        assert_eq!(r.u8().unwrap(), 1);
    }

    #[test]
    fn geometry_mismatch_is_typed() {
        let mut w = SnapWriter::new();
        save_slice(&mut w, &[1u8, 2, 3]);
        let bytes = w.into_bytes();
        let mut dst = [0u8; 2];
        let err = load_slice_into(&mut SnapReader::new(&bytes), &mut dst, "field").unwrap_err();
        assert!(matches!(err, SnapError::Mismatch(_)));
    }

    #[test]
    fn load_vec_exact_checks_geometry() {
        let mut w = SnapWriter::new();
        save_slice(&mut w, &[10u32, 20, 30]);
        let bytes = w.into_bytes();
        let v = load_vec_exact::<u32>(&mut SnapReader::new(&bytes), 3, "field").unwrap();
        assert_eq!(v, vec![10, 20, 30]);
        let err = load_vec_exact::<u32>(&mut SnapReader::new(&bytes), 4, "field").unwrap_err();
        assert!(matches!(err, SnapError::Mismatch(_)));
    }

    #[test]
    fn fnv_matches_reference() {
        // FNV-1a-64 of empty input is the offset basis.
        assert_eq!(fnv1a(b""), FNV_OFFSET);
        // Incremental == one-shot.
        let h = fnv1a_update(fnv1a_update(FNV_OFFSET, b"he"), b"llo");
        assert_eq!(h, fnv1a(b"hello"));
    }
}
