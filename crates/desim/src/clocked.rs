//! Clocked (cycle-driven) simulation harness.
//!
//! Cycle-accurate router models are most naturally expressed as synchronous
//! hardware: every component observes the state of the previous cycle and
//! computes its next state, once per clock edge. [`ClockedEngine`] drives a
//! set of [`Clocked`] components in two sub-phases per cycle:
//!
//! 1. **comb** ([`Clocked::tick`]) — components read shared state and enqueue
//!    their outputs/side effects for this cycle, in a fixed registration
//!    order (deterministic).
//! 2. **commit** ([`Clocked::commit`]) — components latch the newly produced
//!    state so the next cycle observes a consistent snapshot.
//!
//! The two-phase split is what prevents the classic cycle-simulation bug
//! where a component scheduled earlier in the loop sees *this* cycle's
//! outputs of a component scheduled later.

use crate::Cycle;

/// A synchronous component advanced once per clock edge.
pub trait Clocked {
    /// Shared simulation state visible to all components.
    type Shared;

    /// Combinational phase: read `shared`, stage outputs.
    fn tick(&mut self, now: Cycle, shared: &mut Self::Shared);

    /// Commit phase: latch staged outputs into visible state.
    fn commit(&mut self, _now: Cycle, _shared: &mut Self::Shared) {}
}

/// Drives a vector of boxed clocked components plus shared state.
pub struct ClockedEngine<S> {
    components: Vec<Box<dyn Clocked<Shared = S>>>,
    shared: S,
    now: Cycle,
}

impl<S> ClockedEngine<S> {
    /// Creates an engine at cycle 0 with the given shared state.
    pub fn new(shared: S) -> Self {
        Self {
            components: Vec::new(),
            shared,
            now: 0,
        }
    }

    /// Registers a component; tick order is registration order.
    pub fn add(&mut self, c: Box<dyn Clocked<Shared = S>>) {
        self.components.push(c);
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Shared state accessor.
    pub fn shared(&self) -> &S {
        &self.shared
    }

    /// Mutable shared state accessor.
    pub fn shared_mut(&mut self) -> &mut S {
        &mut self.shared
    }

    /// Number of registered components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Advances exactly one cycle (tick all, then commit all).
    pub fn step(&mut self) {
        for c in &mut self.components {
            c.tick(self.now, &mut self.shared);
        }
        for c in &mut self.components {
            c.commit(self.now, &mut self.shared);
        }
        self.now += 1;
    }

    /// Runs until cycle `end` (exclusive).
    pub fn run_to(&mut self, end: Cycle) {
        while self.now < end {
            self.step();
        }
    }

    /// Runs until `stop(shared, now)` returns true or `max` cycles elapse.
    /// Returns the cycle at which it stopped.
    pub fn run_while(
        &mut self,
        max: Cycle,
        mut keep_going: impl FnMut(&S, Cycle) -> bool,
    ) -> Cycle {
        let end = self.now + max;
        while self.now < end && keep_going(&self.shared, self.now) {
            self.step();
        }
        self.now
    }

    /// Consumes the engine and returns the shared state.
    pub fn into_shared(self) -> S {
        self.shared
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A component that, during tick, stages `shared.current + 1` and commits
    /// it at the clock edge. With two of these sharing one register, the
    /// two-phase protocol guarantees both observe the same pre-edge value.
    struct Incrementer {
        staged: u64,
        observed: Vec<u64>,
    }

    struct SharedReg {
        current: u64,
    }

    impl Clocked for Incrementer {
        type Shared = SharedReg;
        fn tick(&mut self, _now: Cycle, shared: &mut SharedReg) {
            self.observed.push(shared.current);
            self.staged = shared.current + 1;
        }
        fn commit(&mut self, _now: Cycle, shared: &mut SharedReg) {
            shared.current = self.staged;
        }
    }

    #[test]
    fn two_phase_gives_consistent_snapshot() {
        let mut engine = ClockedEngine::new(SharedReg { current: 0 });
        engine.add(Box::new(Incrementer {
            staged: 0,
            observed: vec![],
        }));
        engine.add(Box::new(Incrementer {
            staged: 0,
            observed: vec![],
        }));
        engine.run_to(3);
        assert_eq!(engine.now(), 3);
        // Both incrementers observed the same value each cycle; the register
        // advances by one per cycle (second commit wins but stages the same).
        assert_eq!(engine.shared().current, 3);
    }

    #[test]
    fn run_while_stops_on_predicate() {
        struct Counter;
        impl Clocked for Counter {
            type Shared = u64;
            fn tick(&mut self, _now: Cycle, shared: &mut u64) {
                *shared += 1;
            }
        }
        let mut engine = ClockedEngine::new(0u64);
        engine.add(Box::new(Counter));
        let stopped = engine.run_while(1000, |s, _| *s < 10);
        assert_eq!(stopped, 10);
        assert_eq!(*engine.shared(), 10);
    }

    #[test]
    fn run_while_respects_max() {
        struct Nop;
        impl Clocked for Nop {
            type Shared = ();
            fn tick(&mut self, _now: Cycle, _shared: &mut ()) {}
        }
        let mut engine = ClockedEngine::new(());
        engine.add(Box::new(Nop));
        let stopped = engine.run_while(5, |_, _| true);
        assert_eq!(stopped, 5);
        assert_eq!(engine.component_count(), 1);
    }
}
