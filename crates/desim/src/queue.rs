//! Pending-event set implementations.
//!
//! A discrete-event simulator spends most of its kernel time inserting and
//! extracting timestamped events. This module provides two classic
//! structures behind one trait:
//!
//! * [`BinaryHeapQueue`] — `O(log n)` insert/extract, great general default.
//! * [`CalendarQueue`] — Brown's calendar queue (CACM 1988), amortised `O(1)`
//!   when event times are roughly uniformly spread, which is exactly the case
//!   for a clocked network simulation where most events land within a few
//!   cycles of *now*.
//!
//! Both are deterministic: events with equal timestamps dequeue in insertion
//! order (FIFO tie-break), which the simulator relies on for reproducibility.

use crate::Cycle;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A pending-event set: a priority queue of `(time, sequence, event)` keyed
/// by time then by insertion sequence.
pub trait EventQueue<E> {
    /// Inserts `event` at absolute time `time`.
    fn insert(&mut self, time: Cycle, event: E);
    /// Removes and returns the earliest event, FIFO among ties.
    fn pop(&mut self) -> Option<(Cycle, E)>;
    /// Timestamp of the earliest pending event, if any.
    fn peek_time(&self) -> Option<Cycle>;
    /// Number of pending events.
    fn len(&self) -> usize;
    /// True if no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct HeapEntry<E> {
    time: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so that BinaryHeap (a max-heap) yields the *smallest*
        // (time, seq) first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Binary-heap pending-event set with FIFO tie-breaking.
pub struct BinaryHeapQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    next_seq: u64,
}

impl<E> Default for BinaryHeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> BinaryHeapQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }
}

impl<E: crate::snap::Snap> BinaryHeapQueue<E> {
    /// Serializes the pending set for a checkpoint.
    ///
    /// Entries are written sorted by `(time, seq)` with their original
    /// sequence numbers, so a restored heap pops in exactly the same order
    /// and later inserts continue the same FIFO tie-break sequence.
    pub fn save_state(&self, w: &mut crate::snap::SnapWriter) {
        let mut entries: Vec<&HeapEntry<E>> = self.heap.iter().collect();
        entries.sort_by_key(|e| (e.time, e.seq));
        w.usize(entries.len());
        for e in entries {
            w.u64(e.time);
            w.u64(e.seq);
            e.event.save(w);
        }
        w.u64(self.next_seq);
    }

    /// Rebuilds the pending set from a checkpoint, replacing any contents.
    pub fn load_state(
        &mut self,
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<(), crate::snap::SnapError> {
        let n = r.len_at_most(1 << 30, "BinaryHeapQueue")?;
        let mut heap = BinaryHeap::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            let time = r.u64()?;
            let seq = r.u64()?;
            let event = E::load(r)?;
            heap.push(HeapEntry { time, seq, event });
        }
        self.next_seq = r.u64()?;
        self.heap = heap;
        Ok(())
    }
}

impl<E> EventQueue<E> for BinaryHeapQueue<E> {
    fn insert(&mut self, time: Cycle, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry { time, seq, event });
    }

    fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.time)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Brown's calendar queue: an array of time-bucketed FIFO "days" scanned in
/// time order (fixed geometry — callers pick `days`/`day_width` for their
/// workload; the classic dynamic resizing is not needed for the clocked
/// network model and is intentionally omitted).
///
/// Events far in the future (beyond one "year") sit in an overflow heap and
/// migrate into the calendar as the year wraps.
pub struct CalendarQueue<E> {
    /// One bucket per "day"; each bucket sorted lazily on pop.
    buckets: Vec<Vec<(Cycle, u64, E)>>,
    /// Width of each day in cycles.
    day_width: Cycle,
    /// Index of the day currently being scanned.
    current_day: usize,
    /// Start time of the current year (time of bucket 0).
    year_start: Cycle,
    len: usize,
    next_seq: u64,
    /// Events beyond the current year, keyed by (time, original seq) so FIFO
    /// tie-break order survives the round-trip through overflow.
    overflow: BinaryHeap<OverflowEntry<E>>,
}

struct OverflowEntry<E> {
    time: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for OverflowEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for OverflowEntry<E> {}
impl<E> PartialOrd for OverflowEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for OverflowEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by (time, seq).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> CalendarQueue<E> {
    /// Creates a calendar with `days` buckets of `day_width` cycles each.
    ///
    /// `days` is rounded up to a power of two. A good starting point for a
    /// clocked network model is `days = 64`, `day_width = 1`.
    pub fn new(days: usize, day_width: Cycle) -> Self {
        let days = days.next_power_of_two().max(2);
        Self {
            buckets: (0..days).map(|_| Vec::new()).collect(),
            day_width: day_width.max(1),
            current_day: 0,
            year_start: 0,
            len: 0,
            next_seq: 0,
            overflow: BinaryHeap::new(),
        }
    }

    fn year_len(&self) -> Cycle {
        self.day_width * self.buckets.len() as Cycle
    }

    /// Absolute day-to-bucket mapping: bucket = (t / width) mod days.
    /// Consistent across year jumps, which keeps ordering correct.
    fn bucket_index(&self, time: Cycle) -> Option<usize> {
        if time < self.year_start {
            // Late event (scheduled at/before the scan point); park it in the
            // current day so it is found immediately.
            return Some(self.current_day);
        }
        if time - self.year_start >= self.year_len() {
            None
        } else {
            Some(((time / self.day_width) as usize) % self.buckets.len())
        }
    }

    /// Migrates overflow events that now fall within the (new) year,
    /// preserving their original insertion sequence numbers.
    fn refill_from_overflow(&mut self) {
        while let Some(entry) = self.overflow.peek() {
            if entry.time < self.year_start + self.year_len() {
                let entry = self.overflow.pop().expect("peeked");
                let idx = self
                    .bucket_index(entry.time)
                    .expect("within year by construction");
                self.buckets[idx].push((entry.time, entry.seq, entry.event));
            } else {
                break;
            }
        }
    }
}

impl<E> EventQueue<E> for CalendarQueue<E> {
    fn insert(&mut self, time: Cycle, event: E) {
        self.len += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        match self.bucket_index(time) {
            Some(idx) => {
                self.buckets[idx].push((time, seq, event));
            }
            None => {
                self.overflow.push(OverflowEntry { time, seq, event });
            }
        }
    }

    fn pop(&mut self) -> Option<(Cycle, E)> {
        if self.len == 0 {
            return None;
        }
        // Scan at most one full year of days; if nothing is found the
        // remaining events live in overflow — advance the year.
        loop {
            for _ in 0..self.buckets.len() {
                let day_end = self.year_start + self.day_width;
                let bucket = &mut self.buckets[self.current_day];
                if !bucket.is_empty() {
                    // Find the earliest (time, seq) event in this day that
                    // falls before the day boundary.
                    let mut best: Option<usize> = None;
                    for (i, (t, s, _)) in bucket.iter().enumerate() {
                        if *t < day_end {
                            match best {
                                None => best = Some(i),
                                Some(b) => {
                                    let (bt, bs, _) = &bucket[b];
                                    if (*t, *s) < (*bt, *bs) {
                                        best = Some(i);
                                    }
                                }
                            }
                        }
                    }
                    if let Some(i) = best {
                        let (t, _, e) = bucket.swap_remove(i);
                        self.len -= 1;
                        return Some((t, e));
                    }
                }
                // Nothing due this day: advance to the next day.
                self.current_day = (self.current_day + 1) % self.buckets.len();
                self.year_start += self.day_width;
                if self.current_day == 0 {
                    self.refill_from_overflow();
                }
            }
            // A full year scanned with nothing due. All remaining events are
            // in overflow or in future days; fast-forward the year to the
            // earliest pending event.
            let earliest_cal = self
                .buckets
                .iter()
                .flat_map(|b| b.iter().map(|(t, _, _)| *t))
                .min();
            let earliest = match (earliest_cal, self.overflow.peek().map(|e| e.time)) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => return None,
            };
            // Jump the year so `earliest` falls in the current day, keeping
            // the absolute bucket mapping and the scan position in sync.
            self.year_start = earliest - (earliest % self.day_width);
            self.current_day = ((self.year_start / self.day_width) as usize) % self.buckets.len();
            self.refill_from_overflow();
        }
    }

    fn peek_time(&self) -> Option<Cycle> {
        let cal = self
            .buckets
            .iter()
            .flat_map(|b| b.iter().map(|(t, _, _)| *t))
            .min();
        match (cal, self.overflow.peek().map(|e| e.time)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<Q: EventQueue<u32>>(mut q: Q) {
        q.insert(10, 1);
        q.insert(5, 2);
        q.insert(10, 3);
        q.insert(0, 4);
        assert_eq!(q.len(), 4);
        assert_eq!(q.peek_time(), Some(0));
        assert_eq!(q.pop(), Some((0, 4)));
        assert_eq!(q.pop(), Some((5, 2)));
        // FIFO among equal timestamps.
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((10, 3)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn heap_basic_order() {
        exercise(BinaryHeapQueue::new());
    }

    #[test]
    fn calendar_basic_order() {
        exercise(CalendarQueue::new(8, 4));
    }

    #[test]
    fn calendar_far_future_overflow() {
        let mut q = CalendarQueue::new(4, 2); // year = 8 cycles
        q.insert(1000, 1);
        q.insert(3, 2);
        q.insert(2000, 3);
        assert_eq!(q.pop(), Some((3, 2)));
        assert_eq!(q.pop(), Some((1000, 1)));
        assert_eq!(q.pop(), Some((2000, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn calendar_interleaved_insert_pop() {
        let mut q = CalendarQueue::new(8, 1);
        q.insert(2, 0);
        assert_eq!(q.pop(), Some((2, 0)));
        q.insert(3, 1);
        q.insert(3, 2);
        q.insert(100, 3);
        assert_eq!(q.pop(), Some((3, 1)));
        q.insert(4, 4);
        assert_eq!(q.pop(), Some((3, 2)));
        assert_eq!(q.pop(), Some((4, 4)));
        assert_eq!(q.pop(), Some((100, 3)));
    }

    #[test]
    fn heap_with_capacity() {
        let mut q: BinaryHeapQueue<u8> = BinaryHeapQueue::with_capacity(16);
        q.insert(1, 7);
        assert_eq!(q.pop(), Some((1, 7)));
    }

    /// Both queues must agree with a reference model on random workloads.
    #[test]
    fn queues_agree_with_reference() {
        let mut heap = BinaryHeapQueue::new();
        let mut cal = CalendarQueue::new(16, 2);
        let mut reference: Vec<(Cycle, u64, u32)> = Vec::new();
        let mut seq = 0u64;
        // Simple LCG so the test is deterministic without rand.
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut now = 0;
        for round in 0..2000u32 {
            let r = next();
            if r % 3 != 0 {
                let t = now + (r % 50) as Cycle;
                heap.insert(t, round);
                cal.insert(t, round);
                reference.push((t, seq, round));
                seq += 1;
            } else {
                let expect = {
                    reference
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, (t, s, _))| (*t, *s))
                        .map(|(i, _)| i)
                };
                match expect {
                    Some(i) => {
                        let (t, _, v) = reference.remove(i);
                        now = now.max(t);
                        assert_eq!(heap.pop(), Some((t, v)), "heap mismatch");
                        assert_eq!(cal.pop(), Some((t, v)), "calendar mismatch");
                    }
                    None => {
                        assert_eq!(heap.pop(), None);
                        assert_eq!(cal.pop(), None);
                    }
                }
            }
        }
        // Drain the rest.
        while !reference.is_empty() {
            let i = reference
                .iter()
                .enumerate()
                .min_by_key(|(_, (t, s, _))| (*t, *s))
                .map(|(i, _)| i)
                .unwrap();
            let (t, _, v) = reference.remove(i);
            assert_eq!(heap.pop(), Some((t, v)));
            assert_eq!(cal.pop(), Some((t, v)));
        }
        assert!(heap.is_empty());
        assert!(cal.is_empty());
    }
}
