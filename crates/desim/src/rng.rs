//! Deterministic random-number streams and network-simulation distributions.
//!
//! The simulator needs reproducibility above all: every experiment in
//! EXPERIMENTS.md is identified by a single `u64` seed, and changing one
//! node's configuration must not perturb any other node's random draws.
//! [`stream`] therefore derives an independent PCG32 stream per (seed,
//! stream-id) pair via SplitMix64, the standard seeding recommendation for
//! PCG.
//!
//! Distributions included are the ones a network simulator needs:
//! * [`Pcg32::bernoulli`] — per-cycle packet injection (§4: "packets were
//!   injected according to Bernoulli process based on the network load"),
//! * [`Pcg32::below`] / [`Pcg32::range`] — uniform destinations (unbiased,
//!   via Lemire rejection),
//! * [`Pcg32::exponential`] / [`Pcg32::geometric`] — inter-arrival times,
//! * [`Zipf`] — skewed hotspot destination choice (extension workloads).

/// SplitMix64: used to expand one seed into per-stream state/increment pairs.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// PCG32 (XSH-RR 64/32): small, fast, statistically solid generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    /// Stream selector; must be odd.
    inc: u64,
}

impl Pcg32 {
    const MULT: u64 = 6364136223846793005;

    /// Creates a generator from an explicit state and stream selector.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = Self {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Derives an independent stream `id` from a master `seed`.
    ///
    /// Streams with different ids are de-correlated both in state and in the
    /// PCG stream increment.
    pub fn stream(seed: u64, id: u64) -> Self {
        let mut s = seed ^ id.wrapping_mul(0xA0761D6478BD642F);
        let state = splitmix64(&mut s);
        let inc = splitmix64(&mut s);
        Self::new(state, inc)
    }

    /// Next 32 uniformly random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(Self::MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform float in `[0, 1)` with 32 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        self.next_u32() as f64 * (1.0 / 4294967296.0)
    }

    /// Unbiased uniform integer in `[0, bound)` via Lemire's method.
    ///
    /// # Panics
    /// If `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "below(0) is meaningless");
        loop {
            let x = self.next_u32();
            let m = (x as u64) * (bound as u64);
            let low = m as u32;
            if low >= bound {
                return (m >> 32) as u32;
            }
            // Slow path: rejection to remove modulo bias.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 32) as u32;
            }
        }
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    #[inline]
    pub fn range(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.next_f64() < p
    }

    /// Exponential variate with the given `rate` (mean `1/rate`).
    #[inline]
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0);
        // 1 - U avoids ln(0).
        -(1.0 - self.next_f64()).ln() / rate
    }

    /// Geometric variate: number of failures before the first success of a
    /// Bernoulli(p) process. This is the inter-arrival gap of a Bernoulli
    /// injection source.
    #[inline]
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0);
        if p >= 1.0 {
            return 0;
        }
        let u = 1.0 - self.next_f64();
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u32 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty());
        &items[self.below(items.len() as u32) as usize]
    }
}

impl crate::snap::Snap for Pcg32 {
    fn save(&self, w: &mut crate::snap::SnapWriter) {
        w.u64(self.state);
        w.u64(self.inc);
    }
    fn load(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        let state = r.u64()?;
        let inc = r.u64()?;
        if inc & 1 == 0 {
            return Err(crate::snap::SnapError::Format(
                "PCG32 stream increment must be odd".to_string(),
            ));
        }
        Ok(Self { state, inc })
    }
}

/// Convenience alias for [`Pcg32::stream`].
pub fn stream(seed: u64, id: u64) -> Pcg32 {
    Pcg32::stream(seed, id)
}

/// Zipf distribution over `{0, 1, ..., n-1}` with exponent `s`, sampled by
/// inverse-CDF over a precomputed table. Used for hotspot traffic.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a Zipf(n, s) sampler. `s = 0` degenerates to uniform.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there is a single category.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a category index in `[0, n)`.
    pub fn sample(&self, rng: &mut Pcg32) -> usize {
        let u = rng.next_f64();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("no NaN in cdf"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = Pcg32::stream(42, 7);
        let mut b = Pcg32::stream(42, 7);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_streams_differ() {
        let mut a = Pcg32::stream(42, 0);
        let mut b = Pcg32::stream(42, 1);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams look correlated: {same} equal of 64");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Pcg32::stream(1, 1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = Pcg32::stream(3, 9);
        let n = 100_000;
        let k = 10u32;
        let mut counts = vec![0u32; k as usize];
        for _ in 0..n {
            counts[rng.below(k) as usize] += 1;
        }
        let expect = n as f64 / k as f64;
        for c in counts {
            assert!(
                (c as f64 - expect).abs() < expect * 0.05,
                "bucket count {c} too far from {expect}"
            );
        }
    }

    #[test]
    fn bernoulli_matches_probability() {
        let mut rng = Pcg32::stream(11, 0);
        let p = 0.3;
        let n = 200_000;
        let hits = (0..n).filter(|_| rng.bernoulli(p)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - p).abs() < 0.005, "rate {rate}");
        assert!(rng.bernoulli(1.0));
        assert!(!rng.bernoulli(0.0));
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Pcg32::stream(5, 5);
        let rate = 0.25;
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(rate)).sum();
        let mean = sum / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn geometric_mean_matches_bernoulli_gap() {
        let mut rng = Pcg32::stream(6, 6);
        let p = 0.2;
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| rng.geometric(p)).sum();
        let mean = sum as f64 / n as f64;
        // Mean failures before success = (1-p)/p = 4.
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
        assert_eq!(rng.geometric(1.0), 0);
    }

    #[test]
    fn range_inclusive_bounds() {
        let mut rng = Pcg32::stream(8, 2);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            let v = rng.range(3, 6);
            assert!((3..=6).contains(&v));
            lo_seen |= v == 3;
            hi_seen |= v == 6;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg32::stream(9, 3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let z = Zipf::new(16, 1.2);
        let mut rng = Pcg32::stream(10, 4);
        let mut counts = [0u32; 16];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[8] * 4, "{counts:?}");
        assert!(counts[0] > counts[15] * 6, "{counts:?}");
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(8, 0.0);
        let mut rng = Pcg32::stream(12, 0);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "{counts:?}");
        }
    }

    #[test]
    fn choose_returns_members() {
        let mut rng = Pcg32::stream(13, 0);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(rng.choose(&items)));
        }
    }
}
