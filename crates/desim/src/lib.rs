//! # desim — a discrete-event simulation engine
//!
//! This crate is the substrate the original E-RAPID paper obtained from
//! YACSIM/NETSIM (Rice University, C, long unavailable). It provides:
//!
//! * a deterministic event-driven kernel ([`sim::Simulator`]) with two
//!   interchangeable pending-event set implementations (binary heap and
//!   calendar queue, [`queue`]),
//! * a *clocked* harness ([`clocked`]) for cycle-accurate models that advance
//!   every component once per clock edge — this is what the network model in
//!   `erapid-core` runs on,
//! * deterministic, splittable random-number streams and the distributions a
//!   network simulator needs ([`rng`]): Bernoulli injection processes,
//!   uniform destinations, geometric/exponential inter-arrivals, Zipf
//!   hotspots,
//! * simulation phase management ([`phase`]): warm-up, measurement and drain
//!   windows exactly as described in §4 of the paper ("the simulator was
//!   warmed up under load without taking measurements until steady state was
//!   reached ... a sample of injected packets were labelled during a
//!   measurement interval"),
//! * a bounded event trace for debugging ([`trace`]),
//! * a checksummed binary snapshot substrate for checkpoint/restore of
//!   long-horizon runs ([`snap`]).
//!
//! The whole engine is single-threaded on purpose: cycle-accurate network
//! simulation at the paper's scale (64 nodes) is dominated by event ordering
//! dependencies, and determinism — every run reproducible from one `u64`
//! seed — is worth far more than parallel speedup here.
//!
//! ## Quick example
//!
//! ```
//! use desim::sim::Simulator;
//!
//! let mut sim: Simulator<u32> = Simulator::new();
//! sim.schedule(5, 1);
//! sim.schedule(2, 2);
//! let mut order = Vec::new();
//! while let Some((t, ev)) = sim.next_event() {
//!     order.push((t, ev));
//! }
//! assert_eq!(order, vec![(2, 2), (5, 1)]);
//! ```

pub mod clocked;
pub mod phase;
pub mod process;
pub mod queue;
pub mod rng;
pub mod sim;
#[deny(clippy::unwrap_used, clippy::expect_used)]
pub mod snap;
pub mod trace;

/// Simulation time, measured in router clock cycles.
///
/// The paper's router clock is 400 MHz (2.5 ns per cycle); everything in the
/// reproduction is expressed in these cycles.
pub type Cycle = u64;

/// Converts a cycle count to nanoseconds at the paper's 400 MHz router clock.
pub fn cycles_to_ns(cycles: Cycle) -> f64 {
    cycles as f64 * NS_PER_CYCLE
}

/// Converts nanoseconds to (rounded-up) cycles at the 400 MHz router clock.
pub fn ns_to_cycles(ns: f64) -> Cycle {
    (ns / NS_PER_CYCLE).ceil() as Cycle
}

/// Router clock frequency used throughout the reproduction (Table 1: 400 MHz).
pub const CLOCK_HZ: f64 = 400.0e6;

/// Nanoseconds per router clock cycle (2.5 ns at 400 MHz).
pub const NS_PER_CYCLE: f64 = 1.0e9 / CLOCK_HZ;

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn cycle_time_roundtrip() {
        assert!((cycles_to_ns(1) - 2.5).abs() < 1e-12);
        assert_eq!(ns_to_cycles(2.5), 1);
        assert_eq!(ns_to_cycles(2.6), 2);
        assert_eq!(ns_to_cycles(5.0), 2);
    }

    #[test]
    fn clock_constant_is_400mhz() {
        assert!((CLOCK_HZ - 4.0e8).abs() < 1.0);
    }
}
