//! Bounded event tracing for debugging simulation models.
//!
//! A [`TraceRing`] keeps the last `N` trace records in a fixed ring buffer so
//! a failing test can dump recent history without unbounded memory. Tracing
//! is cheap enough to leave compiled in; models gate record emission on
//! [`TraceRing::enabled`].

use crate::Cycle;
use std::collections::VecDeque;
use std::fmt;

/// One trace record: a timestamped, categorised message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulation time of the event.
    pub time: Cycle,
    /// Free-form category tag, e.g. `"inject"`, `"dbr"`, `"dpm"`.
    pub tag: &'static str,
    /// Rendered message.
    pub message: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>10}] {:<8} {}", self.time, self.tag, self.message)
    }
}

/// Fixed-capacity ring of trace records.
#[derive(Debug, Clone)]
pub struct TraceRing {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl TraceRing {
    /// Creates a ring holding at most `capacity` records, enabled.
    pub fn new(capacity: usize) -> Self {
        Self {
            records: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            enabled: true,
            dropped: 0,
        }
    }

    /// Creates a disabled ring (records are discarded without formatting).
    pub fn disabled() -> Self {
        let mut ring = Self::new(1);
        ring.enabled = false;
        ring
    }

    /// Whether records are currently captured. Models should check this
    /// before building message strings.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables capture.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Appends a record, evicting the oldest if at capacity.
    pub fn push(&mut self, time: Cycle, tag: &'static str, message: String) {
        if !self.enabled {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord { time, tag, message });
    }

    /// Number of records evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates records oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of records retained.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded (or capture is off).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records matching a tag.
    pub fn with_tag<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a TraceRecord> {
        self.records.iter().filter(move |r| r.tag == tag)
    }

    /// Renders the entire ring, one record per line.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!(
                "... {} earlier records dropped ...\n",
                self.dropped
            ));
        }
        for r in &self.records {
            out.push_str(&r.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let mut ring = TraceRing::new(3);
        for t in 0..5 {
            ring.push(t, "x", format!("m{t}"));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let times: Vec<Cycle> = ring.iter().map(|r| r.time).collect();
        assert_eq!(times, vec![2, 3, 4]);
    }

    #[test]
    fn disabled_ring_discards() {
        let mut ring = TraceRing::disabled();
        ring.push(1, "x", "ignored".into());
        assert!(ring.is_empty());
        assert!(!ring.enabled());
        ring.set_enabled(true);
        ring.push(2, "x", "kept".into());
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn tag_filter_and_dump() {
        let mut ring = TraceRing::new(10);
        ring.push(1, "dbr", "realloc".into());
        ring.push(2, "dpm", "scale down".into());
        ring.push(3, "dbr", "restore".into());
        assert_eq!(ring.with_tag("dbr").count(), 2);
        let dump = ring.dump();
        assert!(dump.contains("scale down"));
        assert!(dump.lines().count() == 3);
    }

    #[test]
    fn record_display_format() {
        let r = TraceRecord {
            time: 42,
            tag: "inject",
            message: "pkt 7".into(),
        };
        let s = r.to_string();
        assert!(s.contains("42"));
        assert!(s.contains("inject"));
        assert!(s.contains("pkt 7"));
    }
}
