//! The event-driven simulation kernel.
//!
//! [`Simulator`] owns a pending-event set and the simulation clock. It is
//! generic over the event payload `E`; models either drain events manually
//! with [`Simulator::next_event`] or run a handler loop with
//! [`Simulator::run`] / [`Simulator::run_until`].

use crate::queue::{BinaryHeapQueue, CalendarQueue, EventQueue};
use crate::Cycle;

/// Which pending-event set backs the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Binary heap: `O(log n)`, robust default.
    Heap,
    /// Calendar queue: amortised `O(1)` for near-future-dominated workloads.
    Calendar {
        /// Number of day buckets (rounded up to a power of two).
        days: usize,
        /// Width of each day in cycles.
        day_width: Cycle,
    },
}

enum Backing<E> {
    Heap(BinaryHeapQueue<E>),
    Calendar(CalendarQueue<E>),
}

impl<E> Backing<E> {
    fn insert(&mut self, t: Cycle, e: E) {
        match self {
            Backing::Heap(q) => q.insert(t, e),
            Backing::Calendar(q) => q.insert(t, e),
        }
    }
    fn pop(&mut self) -> Option<(Cycle, E)> {
        match self {
            Backing::Heap(q) => q.pop(),
            Backing::Calendar(q) => q.pop(),
        }
    }
    fn peek_time(&self) -> Option<Cycle> {
        match self {
            Backing::Heap(q) => q.peek_time(),
            Backing::Calendar(q) => q.peek_time(),
        }
    }
    fn len(&self) -> usize {
        match self {
            Backing::Heap(q) => q.len(),
            Backing::Calendar(q) => q.len(),
        }
    }
}

/// Deterministic discrete-event simulator.
///
/// Time never moves backwards: scheduling an event strictly in the past
/// panics (scheduling *at the current time* is allowed and is serviced after
/// already-pending events at that time, in FIFO order).
pub struct Simulator<E> {
    queue: Backing<E>,
    now: Cycle,
    processed: u64,
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// Creates a simulator backed by a binary heap.
    pub fn new() -> Self {
        Self::with_queue(QueueKind::Heap)
    }

    /// Creates a simulator with an explicit queue choice.
    pub fn with_queue(kind: QueueKind) -> Self {
        let queue = match kind {
            QueueKind::Heap => Backing::Heap(BinaryHeapQueue::new()),
            QueueKind::Calendar { days, day_width } => {
                Backing::Calendar(CalendarQueue::new(days, day_width))
            }
        };
        Self {
            queue,
            now: 0,
            processed: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Total number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    /// If `time` is before the current simulation time.
    pub fn schedule(&mut self, time: Cycle, event: E) {
        assert!(
            time >= self.now,
            "cannot schedule into the past: now={} time={}",
            self.now,
            time
        );
        self.queue.insert(time, event);
    }

    /// Schedules `event` `delay` cycles from now.
    pub fn schedule_in(&mut self, delay: Cycle, event: E) {
        self.queue.insert(self.now + delay, event);
    }

    /// Removes and returns the next event, advancing the clock to its time.
    pub fn next_event(&mut self) -> Option<(Cycle, E)> {
        let (t, e) = self.queue.pop()?;
        debug_assert!(t >= self.now, "event queue returned a past event");
        self.now = t;
        self.processed += 1;
        Some((t, e))
    }

    /// Timestamp of the next pending event.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.queue.peek_time()
    }

    /// Runs the handler over every event until the queue drains.
    ///
    /// The handler may schedule further events through the `&mut Simulator`.
    pub fn run(&mut self, mut handler: impl FnMut(&mut Self, Cycle, E)) {
        while let Some((t, e)) = self.next_event() {
            handler(self, t, e);
        }
    }

    /// Runs events with `time <= deadline`; the clock ends at
    /// `max(deadline, last event time)`.
    pub fn run_until(&mut self, deadline: Cycle, mut handler: impl FnMut(&mut Self, Cycle, E)) {
        while let Some(t) = self.peek_time() {
            if t > deadline {
                break;
            }
            let (t, e) = self.next_event().expect("peeked event vanished");
            handler(self, t, e);
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_events() {
        let mut sim: Simulator<&str> = Simulator::new();
        sim.schedule(3, "a");
        sim.schedule_in(1, "b");
        assert_eq!(sim.next_event(), Some((1, "b")));
        assert_eq!(sim.now(), 1);
        assert_eq!(sim.next_event(), Some((3, "a")));
        assert_eq!(sim.now(), 3);
        assert_eq!(sim.next_event(), None);
        assert_eq!(sim.processed(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut sim: Simulator<u8> = Simulator::new();
        sim.schedule(5, 0);
        sim.next_event();
        sim.schedule(2, 1);
    }

    #[test]
    fn handler_can_cascade_events() {
        let mut sim: Simulator<u32> = Simulator::new();
        sim.schedule(0, 4);
        let mut seen = Vec::new();
        sim.run(|sim, t, depth| {
            seen.push((t, depth));
            if depth > 0 {
                sim.schedule_in(2, depth - 1);
            }
        });
        assert_eq!(seen, vec![(0, 4), (2, 3), (4, 2), (6, 1), (8, 0)]);
        assert_eq!(sim.now(), 8);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim: Simulator<u32> = Simulator::new();
        for t in [1, 5, 9, 20] {
            sim.schedule(t, t as u32);
        }
        let mut seen = Vec::new();
        sim.run_until(10, |_, _, v| seen.push(v));
        assert_eq!(seen, vec![1, 5, 9]);
        assert_eq!(sim.now(), 10);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn calendar_backed_simulator_matches_heap() {
        let mut heap: Simulator<u32> = Simulator::with_queue(QueueKind::Heap);
        let mut cal: Simulator<u32> = Simulator::with_queue(QueueKind::Calendar {
            days: 32,
            day_width: 2,
        });
        for (t, v) in [(4u64, 1u32), (4, 2), (1, 3), (100, 4), (7, 5)] {
            heap.schedule(t, v);
            cal.schedule(t, v);
        }
        loop {
            let a = heap.next_event();
            let b = cal.next_event();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn schedule_at_now_is_serviced() {
        let mut sim: Simulator<u32> = Simulator::new();
        sim.schedule(5, 1);
        sim.next_event();
        sim.schedule(5, 2); // at `now`, not in the past
        assert_eq!(sim.next_event(), Some((5, 2)));
    }
}
